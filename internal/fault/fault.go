// Package fault is the deterministic fault-injection engine: a Plan is a
// seedable, composable schedule of typed fault clauses that attaches to a
// node.World through its channel and lifecycle hooks. Every injected
// fault is recorded in the run's ground-truth trace, and the same plan
// under the same seed replays the identical fault sequence — impairment
// scenarios become first-class, scriptable experiment inputs instead of a
// pair of global knobs.
//
// Clause kinds and what dimension of adversity each exercises:
//
//   - duplicate: each transmission is delivered in extra copies with
//     probability P — at-least-once channels, exposing protocols that
//     assume at-most-once delivery.
//   - burst: a Gilbert–Elliott two-state channel (good/bad) stepped per
//     transmission; the bad state's loss rate models correlated loss
//     bursts that an independent coin (node.Config.LossRate) cannot.
//   - reorder: with probability P a copy is held back up to Window extra
//     ticks, overtaking later traffic on non-FIFO channels.
//   - spike: every transmission touching one of the chosen nodes gains a
//     fixed extra Delay — a slow or overloaded region of the system.
//   - blackout: all traffic on one DIRECTED pair is dropped during the
//     window — a transient asymmetric partition below the overlay's
//     radar (links stay up, packets die).
//   - crash: the chosen nodes crash silently at the window start and, if
//     RecoverAfter is set, recover with their stable-storage state that
//     many ticks later (node.Recover).
//   - rejoin: the chosen nodes announce a Leave at the window start and
//     Join again Down ticks later, re-linking to the neighbors they had —
//     the churn-laundering surface. Reset makes each victim first shed
//     its durable identity record (the deliberate laundering attempt
//     against durable identities); Sybil makes victim i come back under
//     the fresh identity Sybil+i instead of its own (Douceur's cheap-
//     identity control arm: nothing to launder, nothing to inherit).
//   - reconfig: the chosen initiators drive live protocol-stack
//     reconfiguration rounds (node.World.Reconfigure). Each round builds
//     a target epoch from the initiator's current stack — rotating the
//     pair keys (rotate), flipping the RTO policy (adaptive), toggling
//     identity durability (durable), or alternating the audit retention
//     cap / pull fanout between the given value and genesis (retain,
//     fanout) — and runs the quiescence handshake. One round is a timed
//     reconfiguration; count=N with every=T is a reconfig storm.
//     Composes with rejoin/equiv/collude: the handshake must never
//     launder the quarantines and convictions those clauses earn.
//
// The Byzantine clauses model an adversary on the wire or in a sender:
//
//   - corrupt: with probability P, a transmission's payload is tampered
//     with in flight (node.Tamperable), after any authentication tag was
//     applied — an authenticating receiver rejects it, a raw one accepts
//     the forged value.
//   - replay: with probability P, an extra copy of the unmodified wire
//     message is delivered 1..Window extra ticks later — its tag still
//     verifies but its sequence number is stale.
//   - forge: with probability P, the transmission's claimed sender is
//     rewritten to As — the forged claim does not hold the claimed
//     pair's key, and the blame lands on the innocent As.
//   - equiv: the chosen senders equivocate — copies of a logical
//     broadcast bound for the listed Peers are tampered BEFORE the
//     authentication layer tags them, so the lies carry valid tags;
//     per-pair authentication cannot catch a sender that signs its own
//     lies.
//   - collude: the equivocation sharpened against the audit sublayer's
//     geography. The chosen senders partition their Peers into Groups
//     victim sets: every victim in one group receives the IDENTICAL lie
//     (so no victim ever self-conflicts), different groups receive
//     divergent lies, and all traffic from the sender to anyone OUTSIDE
//     Peers is silenced (acks excepted) — no honest witness ever holds a
//     receipt to compare. Unless two victims of different groups are
//     adjacent, 1-hop receipt gossip can never bring the conflicting
//     pair together; convicting needs the audit layer's pull
//     anti-entropy. Chaff > 0 additionally schedules that many rounds of
//     fresh honest broadcasts to the victims (every ChaffEvery ticks,
//     starting at ChaffFrom when set), cycling broadcast numbers to push
//     the contested receipts out of a bounded FIFO store — the retention
//     attack named in ROADMAP.
//   - poison: the membership attack. With probability Rate (key rate),
//     each PEX exchange a chosen sender ships is rewritten in its wire
//     bytes before tagging: Sybils fabricated records of never-joined
//     identities (base, base+1, ...), Dead resurrected records of
//     departed members with forged freshness, and — when Target is set —
//     the sender's genuine record of the target replayed with its hop
//     age reset to 0 (the hub bias, valid even under the view-audit
//     defense because hop is deliberately outside the signature).
//     Undefended views absorb all of it; the defense rejects the forged
//     signatures and quarantines the injector through the auth layer.
//
// Channel clauses compose: each active clause inspects every transmission
// in plan order, and their verdicts accumulate (drops win, delays and
// duplicates add).
package fault

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/node"
	"repro/internal/pex"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Kind discriminates fault clauses.
type Kind string

// Clause kinds.
const (
	KindDuplicate Kind = "dup"
	KindBurst     Kind = "burst"
	KindReorder   Kind = "reorder"
	KindSpike     Kind = "spike"
	KindBlackout  Kind = "blackout"
	KindCrash     Kind = "crash"
	KindRejoin    Kind = "rejoin"
	KindReconfig  Kind = "reconfig"
	KindCorrupt   Kind = "corrupt"
	KindReplay    Kind = "replay"
	KindForge     Kind = "forge"
	KindEquiv     Kind = "equiv"
	KindCollude   Kind = "collude"
	KindPoison    Kind = "poison"
)

// ChaffTag tags the honest filler broadcasts a collude clause's Chaff
// schedule sends to its victims. Behaviors ignore the tag; the audit
// sublayer still stamps and receipts it, which is the attack.
const ChaffTag = "fault.chaff"

// Trace mark tags recorded at injection time (subject entity: the sender
// for channel faults, the victim for lifecycle faults — the crash and
// recovery themselves additionally appear as core.MarkCrash/MarkRecover
// via the node runtime).
const (
	MarkDuplicate = "fault.dup"
	MarkBurst     = "fault.burst"
	MarkReorder   = "fault.reorder"
	MarkSpike     = "fault.spike"
	MarkBlackout  = "fault.blackout"
	MarkCorrupt   = "fault.corrupt"
	MarkReplay    = "fault.replay"
	MarkForge     = "fault.forge"
	MarkEquiv     = "fault.equiv"
	MarkCollude   = "fault.collude"
	MarkPoison    = "fault.poison"
	// MarkRejoin is the INJECTION mark, recorded at the victim when the
	// clause takes it down; the runtime's own core.MarkRejoin flanks the
	// later Join (or doesn't, in the sybil arm — a fresh identity is a
	// first arrival as far as the ground truth can see).
	MarkRejoin = "fault.rejoin"
	// MarkReconfig is recorded at the initiator as each reconfiguration
	// round is injected; the runtime's own core.MarkEpochSwitch then
	// appears at every node that completes the switch.
	MarkReconfig = "fault.reconfig"
)

// Clause is one typed fault with an activity window. Fields are
// kind-specific; Validate rejects meaningless combinations.
type Clause struct {
	Kind Kind `json:"kind"`
	// From and To bound the active window [From, To); To = 0 leaves the
	// window open-ended. Crash clauses fire once, at From.
	From sim.Time `json:"from,omitempty"`
	To   sim.Time `json:"to,omitempty"`
	// P is the per-transmission probability (duplicate, reorder, and the
	// Byzantine kinds).
	P float64 `json:"p,omitempty"`
	// Count is the number of extra copies per duplication. Default 1.
	Count int `json:"count,omitempty"`
	// Window is the maximum extra holding delay of a reorder, or the
	// maximum extra lag of a replayed copy (default 8), in ticks.
	Window sim.Time `json:"window,omitempty"`
	// Delay is the fixed extra latency of a spike, in ticks.
	Delay sim.Time `json:"delay,omitempty"`
	// Nodes are the spike or crash victims, or the misbehaving senders of
	// a Byzantine clause. An empty list means every node (equiv requires
	// an explicit list).
	Nodes []graph.NodeID `json:"nodes,omitempty"`
	// Pair is the blackout's directed (from, to) pair.
	Pair *[2]graph.NodeID `json:"pair,omitempty"`
	// PGB and PBG are the Gilbert–Elliott good→bad and bad→good
	// transition probabilities, stepped once per inspected transmission.
	PGB float64 `json:"pgb,omitempty"`
	PBG float64 `json:"pbg,omitempty"`
	// LossGood and LossBad are the per-state drop probabilities.
	// LossBad defaults to 1 (the bad state kills everything).
	LossGood float64  `json:"lossgood,omitempty"`
	LossBad  *float64 `json:"lossbad,omitempty"`
	// RecoverAfter, on a crash clause, recovers the victims that many
	// ticks after the crash; 0 means they stay down.
	RecoverAfter sim.Time `json:"recover,omitempty"`
	// Down, on a rejoin clause, is how long each victim stays out between
	// its announced leave and its rejoin, in ticks.
	Down sim.Time `json:"down,omitempty"`
	// Reset, on a rejoin clause, makes each victim shed its persisted
	// identity record before rejoining — the deliberate laundering
	// attempt. Under session keying it changes nothing (there is no
	// record); under durable identities it restarts the victim's own
	// counters while PEERS keep their memory, so the "cleaned" rejoiner
	// walks straight into its old anti-replay windows.
	Reset bool `json:"reset,omitempty"`
	// Sybil, on a rejoin clause, makes victim i rejoin under the fresh
	// identity Sybil+i instead of its own — the cheap-identity control
	// arm. 0 means victims return as themselves.
	Sybil graph.NodeID `json:"sybil,omitempty"`
	// Every, on a reconfig clause, is the tick spacing between storm
	// rounds (round r fires at From + r·Every). Required when Count > 1.
	Every sim.Time `json:"every,omitempty"`
	// Rotate, on a reconfig clause, advances the pair-key epoch each
	// round — live key rotation under traffic.
	Rotate bool `json:"rotate,omitempty"`
	// AdaptiveFlip, on a reconfig clause, toggles the retransmission
	// policy (fixed↔adaptive RTO) each round.
	AdaptiveFlip bool `json:"adaptive,omitempty"`
	// DurableFlip, on a reconfig clause, toggles identity durability each
	// round. Deliberate session-semantics laundering surface: compose
	// with care (a departure under a session epoch legitimately forgets).
	DurableFlip bool `json:"durable,omitempty"`
	// RetainTo, on a reconfig clause, alternates the audit retention cap
	// between this value and the genesis cap each round; 0 leaves it.
	RetainTo int `json:"retainto,omitempty"`
	// FanoutTo likewise alternates the audit pull fanout; 0 leaves it.
	FanoutTo int `json:"fanoutto,omitempty"`
	// DropPull, on a collude clause, additionally silences the colluders'
	// own audit pull digests and responses toward EVERYONE (their victims
	// included): an uncooperative relay that equivocates but never
	// answers anti-entropy. Conviction must then travel between honest
	// holders without the colluder's help.
	DropPull bool `json:"droppull,omitempty"`
	// As is the sender a forge clause claims its transmissions came from.
	As *graph.NodeID `json:"as,omitempty"`
	// Peers are the destinations an equiv clause sends its divergent
	// copies to; everyone else receives the honest copy. For collude,
	// Peers are the victims, partitioned into Groups.
	Peers []graph.NodeID `json:"peers,omitempty"`
	// Groups is the number of victim partitions of a collude clause
	// (victims are assigned round-robin by their position in Peers).
	// 0 means the default of 2.
	Groups int `json:"groups,omitempty"`
	// Chaff, on a collude clause, schedules that many rounds of honest
	// filler broadcasts from each colluding sender to its victims,
	// starting at the window's From; 0 disables.
	Chaff int `json:"chaff,omitempty"`
	// ChaffFrom is the absolute tick the first chaff round fires at; 0
	// starts right after the clause window opens. Decoupled from the
	// window so the flood can be aimed at receipts already in store (the
	// eviction attack) without delaying the lies themselves.
	ChaffFrom sim.Time `json:"chafffrom,omitempty"`
	// ChaffEvery is the tick spacing of chaff rounds. 0 means the
	// default of 2.
	ChaffEvery sim.Time `json:"chaffevery,omitempty"`
	// Sybils, on a poison clause, is how many fabricated never-joined
	// identities are injected per poisoned exchange, numbered Sybil,
	// Sybil+1, ... (the rejoin clause's Sybil field doubles as the base;
	// DSL key base).
	Sybils int `json:"sybils,omitempty"`
	// Dead, on a poison clause, is how many departed identities are
	// resurrected per poisoned exchange, freshest-forged first.
	Dead int `json:"dead,omitempty"`
	// Target, on a poison clause, is the member whose genuine record the
	// poisoner replays with hop reset to 0 — the hub bias. 0 disables.
	Target graph.NodeID `json:"target,omitempty"`
}

func probability(name string, p float64) error {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return fmt.Errorf("fault: %s %v outside [0, 1]", name, p)
	}
	return nil
}

// Validate reports the first problem with the clause, or nil.
func (c *Clause) Validate() error {
	if c.From < 0 || c.To < 0 {
		return fmt.Errorf("fault: negative window [%d, %d)", c.From, c.To)
	}
	if c.To != 0 && c.To <= c.From {
		return fmt.Errorf("fault: empty window [%d, %d)", c.From, c.To)
	}
	switch c.Kind {
	case KindDuplicate:
		if err := probability("dup p", c.P); err != nil {
			return err
		}
		if c.P == 0 {
			return fmt.Errorf("fault: dup clause with p=0 never fires")
		}
		if c.Count < 0 {
			return fmt.Errorf("fault: negative dup count %d", c.Count)
		}
	case KindBurst:
		if err := probability("burst pgb", c.PGB); err != nil {
			return err
		}
		if err := probability("burst pbg", c.PBG); err != nil {
			return err
		}
		if err := probability("burst lossgood", c.LossGood); err != nil {
			return err
		}
		if c.LossBad != nil {
			if err := probability("burst lossbad", *c.LossBad); err != nil {
				return err
			}
		}
		if c.PGB == 0 && c.LossGood == 0 {
			return fmt.Errorf("fault: burst clause that can never leave the lossless good state")
		}
	case KindReorder:
		if err := probability("reorder p", c.P); err != nil {
			return err
		}
		if c.P == 0 || c.Window <= 0 {
			return fmt.Errorf("fault: reorder clause needs p > 0 and window > 0")
		}
	case KindSpike:
		if c.Delay <= 0 {
			return fmt.Errorf("fault: spike clause needs delay > 0")
		}
	case KindBlackout:
		if c.Pair == nil {
			return fmt.Errorf("fault: blackout clause needs a directed pair")
		}
		if c.Pair[0] == c.Pair[1] {
			return fmt.Errorf("fault: blackout pair is a self-loop on %d", c.Pair[0])
		}
	case KindCrash:
		if len(c.Nodes) == 0 {
			return fmt.Errorf("fault: crash clause needs victims")
		}
		if c.RecoverAfter < 0 {
			return fmt.Errorf("fault: negative crash recovery delay %d", c.RecoverAfter)
		}
	case KindRejoin:
		if len(c.Nodes) == 0 {
			return fmt.Errorf("fault: rejoin clause needs victims")
		}
		if c.Down <= 0 {
			return fmt.Errorf("fault: rejoin clause needs down > 0")
		}
		if c.Sybil < 0 {
			return fmt.Errorf("fault: negative rejoin sybil base %d", c.Sybil)
		}
		if c.Sybil != 0 && c.Reset {
			return fmt.Errorf("fault: rejoin sybil arm has no record to reset")
		}
	case KindReconfig:
		if !c.Rotate && !c.AdaptiveFlip && !c.DurableFlip && c.RetainTo == 0 && c.FanoutTo == 0 {
			return fmt.Errorf("fault: reconfig clause changes nothing (needs rotate, adaptive, durable, retain, or fanout)")
		}
		if c.Count < 0 {
			return fmt.Errorf("fault: negative reconfig round count %d", c.Count)
		}
		if c.Every < 0 {
			return fmt.Errorf("fault: negative reconfig spacing %d", c.Every)
		}
		if c.Count > 1 && c.Every == 0 {
			return fmt.Errorf("fault: reconfig storm of %d rounds needs every > 0", c.Count)
		}
		if c.RetainTo < 0 {
			return fmt.Errorf("fault: negative reconfig retain target %d", c.RetainTo)
		}
		if c.FanoutTo < 0 {
			return fmt.Errorf("fault: negative reconfig fanout target %d", c.FanoutTo)
		}
	case KindCorrupt:
		if err := probability("corrupt p", c.P); err != nil {
			return err
		}
		if c.P == 0 {
			return fmt.Errorf("fault: corrupt clause with p=0 never fires")
		}
	case KindReplay:
		if err := probability("replay p", c.P); err != nil {
			return err
		}
		if c.P == 0 {
			return fmt.Errorf("fault: replay clause with p=0 never fires")
		}
		if c.Window < 0 {
			return fmt.Errorf("fault: negative replay window %d", c.Window)
		}
	case KindForge:
		if err := probability("forge p", c.P); err != nil {
			return err
		}
		if c.P == 0 {
			return fmt.Errorf("fault: forge clause with p=0 never fires")
		}
		if c.As == nil {
			return fmt.Errorf("fault: forge clause needs a claimed sender (as=)")
		}
	case KindEquiv:
		if err := probability("equiv p", c.P); err != nil {
			return err
		}
		if c.P == 0 {
			return fmt.Errorf("fault: equiv clause with p=0 never fires")
		}
		if len(c.Nodes) == 0 {
			return fmt.Errorf("fault: equiv clause needs explicit equivocating senders")
		}
		if len(c.Peers) == 0 {
			return fmt.Errorf("fault: equiv clause needs the peers to lie to")
		}
	case KindCollude:
		if err := probability("collude p", c.P); err != nil {
			return err
		}
		if c.P == 0 {
			return fmt.Errorf("fault: collude clause with p=0 never fires")
		}
		if len(c.Nodes) == 0 {
			return fmt.Errorf("fault: collude clause needs explicit colluding senders")
		}
		if len(c.Peers) == 0 {
			return fmt.Errorf("fault: collude clause needs the victim peers")
		}
		if g := c.Groups; g != 0 && (g < 2 || g > len(c.Peers)) {
			return fmt.Errorf("fault: collude groups %d outside [2, %d]", g, len(c.Peers))
		}
		if c.Chaff < 0 {
			return fmt.Errorf("fault: negative collude chaff %d", c.Chaff)
		}
		if c.ChaffEvery < 0 {
			return fmt.Errorf("fault: negative collude chaffevery %d", c.ChaffEvery)
		}
		if c.ChaffFrom < 0 {
			return fmt.Errorf("fault: negative collude chafffrom %d", c.ChaffFrom)
		}
	case KindPoison:
		if err := probability("poison rate", c.P); err != nil {
			return err
		}
		if c.P == 0 {
			return fmt.Errorf("fault: poison clause with rate=0 never fires")
		}
		if len(c.Nodes) == 0 {
			return fmt.Errorf("fault: poison clause needs explicit poisoning senders")
		}
		if c.Sybils < 0 {
			return fmt.Errorf("fault: negative poison sybils %d", c.Sybils)
		}
		if c.Dead < 0 {
			return fmt.Errorf("fault: negative poison dead %d", c.Dead)
		}
		if c.Sybils == 0 && c.Dead == 0 && c.Target == 0 {
			return fmt.Errorf("fault: poison clause injects nothing (needs sybils, dead, or target)")
		}
		if c.Sybils > 0 && c.Sybil == 0 {
			return fmt.Errorf("fault: poison sybils need a base identity (base=)")
		}
		if c.Sybil < 0 {
			return fmt.Errorf("fault: negative poison sybil base %d", c.Sybil)
		}
		if c.Target < 0 {
			return fmt.Errorf("fault: negative poison target %d", c.Target)
		}
		if c.Sybils+c.Dead > pex.MaxWireRecords/2 {
			return fmt.Errorf("fault: poison injects %d records per exchange, over the %d wire headroom", c.Sybils+c.Dead, pex.MaxWireRecords/2)
		}
	default:
		return fmt.Errorf("fault: unknown clause kind %q", c.Kind)
	}
	return nil
}

// activeAt reports whether the clause's window contains t.
func (c *Clause) activeAt(t sim.Time) bool {
	return t >= c.From && (c.To == 0 || t < c.To)
}

// lossBad returns the bad-state drop probability (default 1).
func (c *Clause) lossBad() float64 {
	if c.LossBad != nil {
		return *c.LossBad
	}
	return 1
}

// matchesNode reports whether the clause's node list covers id.
func (c *Clause) matchesNode(id graph.NodeID) bool {
	if len(c.Nodes) == 0 {
		return true
	}
	for _, n := range c.Nodes {
		if n == id {
			return true
		}
	}
	return false
}

// matchesPeer reports whether an equiv clause lies to destination id.
func (c *Clause) matchesPeer(id graph.NodeID) bool {
	for _, n := range c.Peers {
		if n == id {
			return true
		}
	}
	return false
}

// groupOf maps a collude victim to its partition: round-robin by
// position in Peers over the effective group count.
func (c *Clause) groupOf(id graph.NodeID) int {
	g := c.Groups
	if g <= 0 {
		g = 2
	}
	for i, p := range c.Peers {
		if p == id {
			return i % g
		}
	}
	return 0
}

// Plan is a deterministic, seedable schedule of fault clauses.
type Plan struct {
	// Seed drives every random draw the plan makes, independently of the
	// world's own channel randomness. Zero is a valid seed.
	Seed uint64 `json:"seed,omitempty"`
	// Clauses apply in order; channel verdicts accumulate.
	Clauses []Clause `json:"clauses"`
}

// Validate reports the first problem with the plan, or nil.
func (pl *Plan) Validate() error {
	for i := range pl.Clauses {
		if err := pl.Clauses[i].Validate(); err != nil {
			return fmt.Errorf("clause %d: %w", i, err)
		}
	}
	return nil
}

// Attach activates the plan on the world: it installs the channel hook
// and schedules the lifecycle clauses. It panics on an invalid plan (use
// Validate first when the plan comes from user input). The returned stop
// function removes the hook and cancels pending lifecycle events.
//
// The plan must be attached to at most one world at a time, and before
// the clauses' windows open (clause times are absolute virtual times; a
// crash scheduled in the past fires immediately).
func (pl *Plan) Attach(w *node.World) (stop func()) {
	if err := pl.Validate(); err != nil {
		panic(err.Error())
	}
	e := &engine{plan: pl, r: rng.New(pl.Seed ^ 0xfa017a57), burstBad: make([]bool, len(pl.Clauses))}
	w.SetChannelHook(e.hook(w))
	for _, c := range pl.Clauses {
		if c.Kind == KindEquiv || c.Kind == KindCollude || c.Kind == KindPoison {
			w.SetSenderHook(e.senderHook(w))
			break
		}
	}
	var events []*sim.Event
	for i := range pl.Clauses {
		c := &pl.Clauses[i]
		switch c.Kind {
		case KindCrash:
			for _, id := range c.Nodes {
				id := id
				at := c.From
				if at < w.Engine.Now() {
					at = w.Engine.Now()
				}
				events = append(events, w.Engine.At(at, func() {
					if w.Proc(id) == nil {
						return // already gone; nothing to crash
					}
					w.Crash(id)
					if c.RecoverAfter > 0 {
						events = append(events, w.Engine.After(c.RecoverAfter, func() {
							if w.Proc(id) == nil {
								w.Recover(id)
							}
						}))
					}
				}))
			}
		case KindRejoin:
			for idx, id := range c.Nodes {
				idx, id := idx, id
				at := c.From
				if at < w.Engine.Now() {
					at = w.Engine.Now()
				}
				events = append(events, w.Engine.At(at, func() {
					p := w.Proc(id)
					if p == nil {
						return // already gone; nothing to churn
					}
					// Capture the victim's edges before the leave tears them
					// down: the rejoiner re-attaches to whoever of its old
					// neighborhood is still around.
					neighbors := append([]graph.NodeID(nil), p.Neighbors()...)
					w.Trace.Mark(int64(w.Engine.Now()), id, MarkRejoin)
					w.Leave(id)
					events = append(events, w.Engine.After(c.Down, func() {
						back := id
						if c.Sybil != 0 {
							back = c.Sybil + graph.NodeID(idx)
						}
						if w.Proc(back) != nil {
							return // identity came back some other way
						}
						if c.Reset {
							w.DropIdentityRecord(id)
						}
						w.Join(back)
						// Overlays that attach joiners themselves (ring, mesh)
						// have already re-created edges by their own policy;
						// only script-controlled overlays need the old
						// neighborhood re-created by direct link control.
						if _, manual := w.Overlay.(topology.LinkController); !manual {
							return
						}
						for _, u := range neighbors {
							if w.Proc(u) != nil && !w.Overlay.Graph().HasEdge(back, u) {
								w.SetLink(back, u, true)
							}
						}
					}))
				}))
			}
		case KindReconfig:
			if !w.ReconfigEnabled() {
				panic("fault: reconfig clause on a world without the reconfiguration layer (node.Config.Reconfig.Enabled)")
			}
			rounds := c.Count
			if rounds <= 0 {
				rounds = 1
			}
			for round := 0; round < rounds; round++ {
				round := round
				at := c.From + sim.Time(round)*c.Every
				if at < w.Engine.Now() {
					at = w.Engine.Now()
				}
				events = append(events, w.Engine.At(at, func() {
					init := e.reconfigInitiator(w, c, round)
					if init < 0 {
						return // nobody present to initiate this round
					}
					target := w.StackOf(init)
					genesis := w.GenesisStack()
					if c.Rotate {
						target.KeyEpoch++
					}
					if c.AdaptiveFlip {
						target.Adaptive = !target.Adaptive
					}
					if c.DurableFlip {
						target.Durable = !target.Durable
					}
					if c.RetainTo != 0 {
						if target.Retain == c.RetainTo {
							target.Retain = genesis.Retain
						} else {
							target.Retain = c.RetainTo
						}
					}
					if c.FanoutTo != 0 {
						if target.PullFanout == c.FanoutTo {
							target.PullFanout = genesis.PullFanout
						} else {
							target.PullFanout = c.FanoutTo
						}
					}
					w.Trace.Mark(int64(w.Engine.Now()), init, MarkReconfig)
					w.Reconfigure(init, target)
				}))
			}
		case KindCollude:
			if c.Chaff <= 0 {
				continue
			}
			every := c.ChaffEvery
			if every <= 0 {
				every = 2
			}
			start := c.ChaffFrom
			if start <= 0 {
				start = c.From + 1
			}
			for _, id := range c.Nodes {
				id := id
				for round := 0; round < c.Chaff; round++ {
					round := round
					at := start + sim.Time(round)*every
					if at < w.Engine.Now() {
						at = w.Engine.Now()
					}
					events = append(events, w.Engine.At(at, func() {
						p := w.Proc(id)
						if p == nil || !p.Alive() {
							return
						}
						// Distinct payload per round = fresh broadcast
						// number per round; both victims of one round share
						// it (one logical broadcast).
						for _, peer := range c.Peers {
							p.Send(peer, ChaffTag, round)
						}
					}))
				}
			}
		}
	}
	return func() {
		w.SetChannelHook(nil)
		w.SetSenderHook(nil)
		for _, ev := range events {
			ev.Cancel()
		}
	}
}

// engine is the per-attachment runtime state of a plan.
type engine struct {
	plan *Plan
	r    *rng.Rand
	// burstBad holds, per clause index, whether that burst clause's
	// Gilbert–Elliott chain is in the bad state.
	burstBad []bool
	// corrupt is the memoized tamper closure of corrupt verdicts.
	corrupt func(any) (any, bool)
}

// reconfigInitiator picks round r's initiator: the clause's listed nodes
// round-robin when given (falling back past absent ones), the lowest
// present node otherwise, -1 when nobody is present at all.
func (e *engine) reconfigInitiator(w *node.World, c *Clause, round int) graph.NodeID {
	if len(c.Nodes) > 0 {
		for off := 0; off < len(c.Nodes); off++ {
			id := c.Nodes[(round+off)%len(c.Nodes)]
			if w.Proc(id) != nil {
				return id
			}
		}
	}
	lowest := graph.NodeID(-1)
	for _, id := range w.Present() {
		if lowest < 0 || id < lowest {
			lowest = id
		}
	}
	return lowest
}

// hook builds the node.ChannelHook evaluating the channel clauses.
func (e *engine) hook(w *node.World) node.ChannelHook {
	return func(now sim.Time, from, to graph.NodeID, tag string) node.ChannelFault {
		var f node.ChannelFault
		t := core.Time(now)
		for i := range e.plan.Clauses {
			c := &e.plan.Clauses[i]
			if !c.activeAt(now) {
				continue
			}
			switch c.Kind {
			case KindDuplicate:
				if e.r.Bool(c.P) {
					n := c.Count
					if n <= 0 {
						n = 1
					}
					f.Duplicates += n
					w.Trace.Mark(t, from, MarkDuplicate)
				}
			case KindBurst:
				// Step the chain once per inspected transmission, then
				// apply the current state's loss rate.
				if e.burstBad[i] {
					if e.r.Bool(c.PBG) {
						e.burstBad[i] = false
					}
				} else if e.r.Bool(c.PGB) {
					e.burstBad[i] = true
				}
				loss := c.LossGood
				if e.burstBad[i] {
					loss = c.lossBad()
				}
				if loss > 0 && e.r.Bool(loss) {
					f.Drop = true
					w.Trace.Mark(t, from, MarkBurst)
				}
			case KindReorder:
				if e.r.Bool(c.P) {
					f.ExtraDelay += sim.Time(1 + e.r.Intn(int(c.Window)))
					w.Trace.Mark(t, from, MarkReorder)
				}
			case KindSpike:
				if c.matchesNode(from) || c.matchesNode(to) {
					f.ExtraDelay += c.Delay
					w.Trace.Mark(t, from, MarkSpike)
				}
			case KindBlackout:
				if from == c.Pair[0] && to == c.Pair[1] {
					f.Drop = true
					w.Trace.Mark(t, from, MarkBlackout)
				}
			case KindCorrupt:
				if c.matchesNode(from) && e.r.Bool(c.P) {
					f.Corrupt = e.corruptFn()
					w.Trace.Mark(t, from, MarkCorrupt)
				}
			case KindReplay:
				if c.matchesNode(from) && e.r.Bool(c.P) {
					win := c.Window
					if win <= 0 {
						win = 8
					}
					f.ReplayAfter = sim.Time(1 + e.r.Intn(int(win)))
					w.Trace.Mark(t, from, MarkReplay)
				}
			case KindForge:
				// Forging the true sender's own claim is a no-op (the tag
				// still verifies); skip it without consuming a draw.
				if c.matchesNode(from) && *c.As != from && e.r.Bool(c.P) {
					f.SpoofFrom = c.As
					w.Trace.Mark(t, from, MarkForge)
				}
			case KindCollude:
				// A colluder goes silent toward everyone outside its victim
				// set — no honest witness ever distills a receipt of its
				// broadcasts to compare against the lies. Acks still flow so
				// the silence reads as the sender having nothing to say, not
				// as a dead link retransmitted into forever.
				if c.matchesNode(from) && tag != node.AckTag {
					silenced := !c.matchesPeer(to)
					// An uncooperative relay drops its own anti-entropy
					// traffic even toward its victims.
					if !silenced && c.DropPull &&
						(tag == node.AuditPullTag || tag == node.AuditPullRespTag) {
						silenced = true
					}
					if silenced {
						f.Drop = true
						w.Trace.Mark(t, from, MarkCollude)
					}
				}
			}
		}
		return f
	}
}

// corruptFn builds the in-flight tamper closure a corrupt verdict carries:
// Tamperable payloads are perturbed with the engine's own rng (keeping
// fault randomness out of the world's channel stream); anything else is
// mangled beyond parsing, which the runtime models as a drop.
func (e *engine) corruptFn() func(any) (any, bool) {
	if e.corrupt == nil {
		e.corrupt = func(p any) (any, bool) {
			tp, ok := p.(node.Tamperable)
			if !ok {
				return nil, false
			}
			return tp.Tamper(e.r), true
		}
	}
	return e.corrupt
}

// senderHook builds the node.SenderHook evaluating equiv clauses: the lie
// is injected before the authentication layer tags the message, so an
// equivocating sender's divergent copies all verify.
//
// When the runtime stamps broadcasts (bseq != 0, i.e. the audit sublayer
// is on), the lie draws come from an rng keyed on (plan seed, from, to,
// bseq) instead of the engine's shared stream: re-sends of the same
// broadcast toward the same peer then lie IDENTICALLY, so a receiver's
// repeated observations of one (sender, bseq) never self-conflict, while
// different peers still get divergent payloads — exactly the shape the
// audit layer must catch. With bseq == 0 the shared stream is used
// unchanged, preserving the draw sequence of pre-audit experiments.
func (e *engine) senderHook(w *node.World) node.SenderHook {
	return func(now sim.Time, from, to graph.NodeID, tag string, bseq uint64, payload any) (any, bool) {
		applied := false
		for i := range e.plan.Clauses {
			c := &e.plan.Clauses[i]
			if !c.activeAt(now) || !c.matchesNode(from) {
				continue
			}
			if c.Kind == KindPoison {
				// The membership attack rides the pex exchange traffic only,
				// rewriting the wire bytes the way a real injector would.
				ex, ok := payload.(pex.Exchange)
				if tag != node.PexExchangeTag && tag != node.PexReplyTag || !ok {
					continue
				}
				if !e.r.Bool(c.P) {
					continue
				}
				payload = e.poison(w, c, from, ex)
				applied = true
				w.Trace.Mark(core.Time(now), from, MarkPoison)
				continue
			}
			if (c.Kind != KindEquiv && c.Kind != KindCollude) || !c.matchesPeer(to) {
				continue
			}
			var r *rng.Rand
			mark := MarkEquiv
			switch c.Kind {
			case KindEquiv:
				r = e.r
				if bseq != 0 {
					r = e.lieRNG(from, to, bseq)
				}
			case KindCollude:
				// The clause's own chaff is honest filler by design: lying
				// on it would hand every victim pair fresh evidence.
				if tag == ChaffTag {
					continue
				}
				// Keying the lie on the GROUP (not the peer) makes all
				// victims of one partition receive the identical lie —
				// receipts inside a group can never conflict.
				r = e.colludeRNG(from, bseq, c.groupOf(to))
				mark = MarkCollude
			}
			if !r.Bool(c.P) {
				continue
			}
			tp, ok := payload.(node.Tamperable)
			if !ok {
				continue
			}
			payload = tp.Tamper(r)
			applied = true
			w.Trace.Mark(core.Time(now), from, mark)
		}
		return payload, applied
	}
}

// poison rewrites one outgoing pex exchange: decode the honest wire
// batch, append the clause's fabrications, re-encode. Sybil and dead
// records claim the current tick as their epoch (maximally fresh) under
// garbage signatures — an undefended view absorbs them wholesale, the
// view-audit defense rejects each one and charges the poisoner's
// injection budget. The hub bias instead replays the poisoner's GENUINE
// record of the target with its hop reset to 0, which no record-level
// check can fault: it marks the boundary of what signing (ID, Epoch) but
// not Hop can defend.
func (e *engine) poison(w *node.World, c *Clause, from graph.NodeID, ex pex.Exchange) pex.Exchange {
	recs, err := pex.DecodeRecords(ex.Wire)
	if err != nil {
		return ex // not an honest batch; nothing credible to blend into
	}
	now := int64(w.Engine.Now())
	have := make(map[graph.NodeID]bool, len(recs))
	for _, r := range recs {
		have[r.ID] = true
	}
	inject := func(r pex.Record) {
		if have[r.ID] || len(recs) >= pex.MaxWireRecords {
			return // an honest-looking batch never repeats a subject
		}
		have[r.ID] = true
		recs = append(recs, r)
	}
	for i := 0; i < c.Sybils; i++ {
		inject(pex.Record{ID: c.Sybil + graph.NodeID(i), Epoch: now, Sig: e.r.Uint64()})
	}
	if c.Dead > 0 {
		departed := w.DepartedEntities()
		n := c.Dead
		if n > len(departed) {
			n = len(departed)
		}
		for i := 0; i < n; i++ {
			inject(pex.Record{ID: departed[i], Epoch: now, Sig: e.r.Uint64()})
		}
	}
	if c.Target != 0 && c.Target != from {
		if rec, ok := w.PexRecordOf(from, c.Target); ok {
			rec.Hop = 0
			if have[rec.ID] {
				for i := range recs {
					if recs[i].ID == rec.ID {
						recs[i] = rec
					}
				}
			} else {
				inject(rec)
			}
		}
	}
	return pex.Exchange{Pull: ex.Pull, Wire: pex.EncodeRecords(recs)}
}

// lieRNG derives the per-copy lie stream of one stamped broadcast. Keying
// on the peer (not the copy) makes the equivocation stable: same
// (sender, peer, bseq) always yields the same lie.
func (e *engine) lieRNG(from, to graph.NodeID, bseq uint64) *rng.Rand {
	seed := e.plan.Seed ^
		uint64(from)*0x9e3779b97f4a7c15 ^
		uint64(to)*0xc2b2ae3d27d4eb4f ^
		bseq*0x165667b19e3779f9
	return rng.New(seed)
}

// colludeRNG derives the lie stream of one colluding broadcast toward one
// victim GROUP: all members of the group draw from the same stream, so
// they receive the identical lie, while different groups diverge.
func (e *engine) colludeRNG(from graph.NodeID, bseq uint64, group int) *rng.Rand {
	seed := e.plan.Seed ^
		uint64(from)*0x9e3779b97f4a7c15 ^
		bseq*0x165667b19e3779f9 ^
		(uint64(group)+1)*0x27d4eb2f165667c5
	return rng.New(seed)
}
