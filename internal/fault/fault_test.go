package fault

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/topology"
)

// chatter sends a ping to every neighbor each interval — steady traffic
// for the channel clauses to chew on.
type chatter struct{ interval sim.Time }

func (c *chatter) Init(p *node.Proc) { c.tick(p) }
func (c *chatter) tick(p *node.Proc) {
	for _, u := range p.Neighbors() {
		p.Send(u, "ping", nil)
	}
	p.After(c.interval, func() { c.tick(p) })
}
func (c *chatter) Receive(*node.Proc, node.Message) {}

// runPlan attaches the plan to a fresh 4-node chattering mesh BEFORE any
// entity joins (joins send immediately, and pre-attach sends would bypass
// the hook), runs it to the horizon and returns the closed world.
func runPlan(t *testing.T, plan *Plan, horizon sim.Time) *node.World {
	t.Helper()
	e := sim.New()
	w := node.NewWorld(e, topology.NewMesh(), func(graph.NodeID) node.Behavior {
		return &chatter{interval: 5}
	}, node.Config{Seed: 7})
	stop := plan.Attach(w)
	for i := 1; i <= 4; i++ {
		w.Join(graph.NodeID(i))
	}
	w.Engine.RunUntil(horizon)
	stop()
	w.Close()
	return w
}

// TestPlanDeterminism is the acceptance gate: the same seed and the same
// plan must replay the identical fault sequence — asserted on the
// byte-identical encoded trace of two independent runs.
func TestPlanDeterminism(t *testing.T) {
	plan, err := Parse("dup:p=0.3@5-60;burst:pgb=0.2,pbg=0.3,lossbad=0.8;reorder:p=0.25,window=6@10-80;spike:nodes=2,delay=4@20-70;blackout:pair=1>3@30-50;crash:nodes=4,recover=25@40;seed=99")
	if err != nil {
		t.Fatal(err)
	}
	encode := func() []byte {
		w := runPlan(t, plan, 120)
		var buf bytes.Buffer
		if err := core.EncodeTrace(&buf, w.Trace); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := encode()
	// Reset the plan's runtime state implicitly: Attach builds a fresh
	// engine per call, so a second run must reproduce run one exactly.
	b := encode()
	if !bytes.Equal(a, b) {
		t.Fatalf("same plan + seed produced different traces (%d vs %d bytes)", len(a), len(b))
	}
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
}

// TestDeterminismSeedSensitivity guards against the opposite failure: a
// plan whose randomness is secretly ignored.
func TestDeterminismSeedSensitivity(t *testing.T) {
	mk := func(seed string) []byte {
		plan, err := Parse("burst:pgb=0.2,pbg=0.3,lossbad=0.8;" + seed)
		if err != nil {
			t.Fatal(err)
		}
		w := runPlan(t, plan, 120)
		var buf bytes.Buffer
		if err := core.EncodeTrace(&buf, w.Trace); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if bytes.Equal(mk("seed=1"), mk("seed=2")) {
		t.Fatal("different plan seeds produced identical traces")
	}
}

func TestBlackoutIsDirected(t *testing.T) {
	plan := &Plan{Clauses: []Clause{{Kind: KindBlackout, Pair: &[2]graph.NodeID{1, 2}}}}
	w := runPlan(t, plan, 40)
	// Deliver events record P = receiver, Q = sender.
	oneToTwo, twoToOne := 0, 0
	for _, ev := range w.Trace.Events() {
		if ev.Kind == core.TDeliver && ev.Tag == "ping" {
			if ev.Q == 1 && ev.P == 2 {
				oneToTwo++
			}
			if ev.Q == 2 && ev.P == 1 {
				twoToOne++
			}
		}
	}
	if oneToTwo != 0 {
		t.Fatalf("blackout 1>2 leaked %d deliveries", oneToTwo)
	}
	if twoToOne == 0 {
		t.Fatal("reverse direction 2>1 should be unaffected")
	}
	marks := 0
	for _, ev := range w.Trace.Events() {
		if ev.Kind == core.TMark && ev.Tag == MarkBlackout {
			marks++
		}
	}
	if marks == 0 {
		t.Fatal("blackout drops not marked in trace")
	}
}

func TestDuplicateDeliversExtraCopies(t *testing.T) {
	// Two nodes, no loss: every ping is duplicated once, so deliveries
	// must be exactly twice the sends.
	e := sim.New()
	w := node.NewWorld(e, topology.NewMesh(), func(graph.NodeID) node.Behavior {
		return &chatter{interval: 5}
	}, node.Config{Seed: 3})
	plan := &Plan{Clauses: []Clause{{Kind: KindDuplicate, P: 1, Count: 1}}}
	stop := plan.Attach(w)
	w.Join(1)
	w.Join(2)
	e.RunUntil(50)
	stop()
	w.Close()
	// Sends at the horizon itself have copies still in flight; count only
	// the sends whose deliveries (latency 1) fit inside the run.
	landed, delivered := 0, 0
	for _, ev := range w.Trace.Events() {
		switch {
		case ev.Kind == core.TSend && ev.At < 50:
			landed++
		case ev.Kind == core.TDeliver:
			delivered++
		}
	}
	if landed == 0 || delivered != 2*landed {
		t.Fatalf("dup p=1 count=1: %d landed sends, %d deliveries (want exactly 2x)", landed, delivered)
	}
}

func TestSpikeDelaysVictimTraffic(t *testing.T) {
	// Latency is the [1,1] default; a spike of 10 on node 2 makes every
	// delivery touching node 2 arrive 11 ticks after the send.
	plan := &Plan{Clauses: []Clause{{Kind: KindSpike, Nodes: []graph.NodeID{2}, Delay: 10}}}
	w := runPlan(t, plan, 60)
	// Several sends per pair are in flight at once; with a constant
	// per-pair latency deliveries come in send order, so a FIFO queue of
	// send times per pair recovers each delivery's latency.
	sendAt := map[[2]graph.NodeID][]core.Time{}
	checked := 0
	for _, ev := range w.Trace.Events() {
		if ev.Tag != "ping" {
			continue
		}
		switch ev.Kind {
		case core.TSend: // P = sender, Q = receiver
			pair := [2]graph.NodeID{ev.P, ev.Q}
			sendAt[pair] = append(sendAt[pair], ev.At)
		case core.TDeliver: // P = receiver, Q = sender
			pair := [2]graph.NodeID{ev.Q, ev.P}
			q := sendAt[pair]
			if len(q) == 0 {
				t.Fatalf("delivery %d->%d without a matching send", ev.P, ev.Q)
			}
			lat := ev.At - q[0]
			sendAt[pair] = q[1:]
			touches2 := ev.P == 2 || ev.Q == 2
			if touches2 && lat != 11 {
				t.Fatalf("spiked delivery %d->%d took %d ticks, want 11", ev.P, ev.Q, lat)
			}
			if !touches2 && lat != 1 {
				t.Fatalf("clean delivery %d->%d took %d ticks, want 1", ev.P, ev.Q, lat)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no deliveries checked")
	}
}

func TestCrashClauseCrashesAndRecovers(t *testing.T) {
	plan := &Plan{Clauses: []Clause{{Kind: KindCrash, From: 20, Nodes: []graph.NodeID{3}, RecoverAfter: 30}}}
	w := runPlan(t, plan, 100)
	if w.Proc(3) == nil {
		t.Fatal("node 3 should be back after recovery")
	}
	var crashAt, recoverAt core.Time = -1, -1
	for _, ev := range w.Trace.Events() {
		if ev.Kind != core.TMark || ev.P != 3 {
			continue
		}
		switch ev.Tag {
		case core.MarkCrash:
			crashAt = ev.At
		case core.MarkRecover:
			recoverAt = ev.At
		}
	}
	if crashAt != 20 || recoverAt != 50 {
		t.Fatalf("crash at %d (want 20), recover at %d (want 50)", crashAt, recoverAt)
	}
	// The recovery gap must be bridged by the recovery-aware session view
	// and visible as a hole in the plain one.
	plain := w.Trace.Sessions()[3]
	bridged := w.Trace.SessionsBridgingRecovery()[3]
	if len(plain) != 2 {
		t.Fatalf("plain sessions of 3 = %v, want a 2-interval gap", plain)
	}
	if len(bridged) != 1 {
		t.Fatalf("bridged sessions of 3 = %v, want one merged interval", bridged)
	}
}

func TestBurstDropsInBadState(t *testing.T) {
	// Always-bad chain (pgb=1, pbg=0, lossbad=1): everything after the
	// first transition is dropped.
	one := 1.0
	plan := &Plan{Clauses: []Clause{{Kind: KindBurst, PGB: 1, PBG: 0, LossBad: &one}}}
	w := runPlan(t, plan, 40)
	ms := w.Trace.Messages("ping")
	if ms.Delivered != 0 {
		t.Fatalf("always-bad burst channel delivered %d messages", ms.Delivered)
	}
	if ms.Dropped == 0 {
		t.Fatal("no drops recorded")
	}
}

func TestWindowsBound(t *testing.T) {
	// Blackout only inside [10, 20): traffic before and after flows.
	plan := &Plan{Clauses: []Clause{{Kind: KindBlackout, From: 10, To: 20, Pair: &[2]graph.NodeID{1, 2}}}}
	w := runPlan(t, plan, 40)
	for _, ev := range w.Trace.Events() {
		if ev.Kind == core.TMark && ev.Tag == MarkBlackout {
			if ev.At < 10 || ev.At >= 20 {
				t.Fatalf("blackout fired at %d, outside [10, 20)", ev.At)
			}
		}
	}
	delivered := false
	for _, ev := range w.Trace.Events() {
		// sender 1 -> receiver 2: Deliver records P = receiver.
		if ev.Kind == core.TDeliver && ev.Q == 1 && ev.P == 2 && ev.At < 10 {
			delivered = true
		}
	}
	if !delivered {
		t.Fatal("pre-window traffic 1->2 should be delivered")
	}
}

func TestParseRoundTrip(t *testing.T) {
	const src = "dup:p=0.2,count=2@100-500;burst:pgb=0.05,pbg=0.3,lossbad=0.9;reorder:p=0.1,window=8@50-;spike:nodes=1+2+3,delay=10@200-400;blackout:pair=1>2@100-200;crash:nodes=4,recover=50@250;seed=42"
	pl, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Clauses) != 6 || pl.Seed != 42 {
		t.Fatalf("parsed %d clauses, seed %d", len(pl.Clauses), pl.Seed)
	}
	again, err := Parse(pl.String())
	if err != nil {
		t.Fatalf("canonical form did not reparse: %v\n%s", err, pl.String())
	}
	if !reflect.DeepEqual(pl, again) {
		t.Fatalf("round trip changed the plan:\n%s\n%s", pl.String(), again.String())
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"dup",                      // p=0 never fires
		"dup:p=1.5",                // probability out of range
		"reorder:p=0.5",            // missing window
		"spike:nodes=1",            // missing delay
		"blackout",                 // missing pair
		"blackout:pair=3>3",        // self loop
		"crash",                    // no victims
		"crash:nodes=1@30-10",      // empty window
		"frobnicate:p=0.5",         // unknown kind
		"dup:p=0.5,bogus=1",        // unknown parameter
		"burst:pgb=0,lossgood=0",   // burst that can never fire
		"dup:p=NaN",                // NaN probability
		"seed=-3",                  // negative seed
		"crash:nodes=1,recover=-5", // negative recovery delay
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	pl, err := Parse("burst:pgb=0.05,pbg=0.3,lossbad=0.9@0-300;crash:nodes=2+5,recover=40@100;seed=7")
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(pl)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pl, back) {
		t.Fatalf("JSON round trip changed the plan:\n%s\n%s", pl.String(), back.String())
	}
}

func TestSummary(t *testing.T) {
	pl, err := Parse("burst:pgb=0.1,pbg=0.5;burst:pgb=0.2,pbg=0.5;crash:nodes=1@10")
	if err != nil {
		t.Fatal(err)
	}
	if got := pl.Summary(); got != "2 burst + 1 crash" {
		t.Fatalf("Summary = %q", got)
	}
	if got := (&Plan{}).Summary(); got != "no faults" {
		t.Fatalf("empty Summary = %q", got)
	}
}
