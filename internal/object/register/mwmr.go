package register

import (
	"fmt"
	"math"
)

// Multi-writer extension of the majority construction. Writers no longer
// own the timestamp sequence: before writing, a client reads a majority
// to learn the highest timestamp, then writes with a strictly larger one.
// Ties between concurrent writers are broken by the writer identity,
// packed into the low bits of the Seq field so that the single-word base
// registers are reused unchanged:
//
//	Seq = round<<16 | writerID
//
// Two majorities always intersect, so the read phase sees every completed
// write and the new timestamp beats it — the classic two-phase (ABD-style)
// write. Reads are atomic per client handle, as in the single-writer
// constructions.

// writerBits is the width of the writer identity inside a timestamp.
const writerBits = 16

// maxRound is the largest round representable next to a writer identity.
const maxRound = math.MaxUint64 >> writerBits

// packTS builds a timestamp word from a round and a writer identity.
func packTS(round uint64, writer uint16) uint64 {
	return round<<writerBits | uint64(writer)
}

// roundOf extracts the round from a timestamp word.
func roundOf(ts uint64) uint64 { return ts >> writerBits }

// MWMR is a multi-writer multi-reader register over 2t+1 unreliable base
// registers under non-responsive crashes. Create one MWClient per
// goroutine; each client may both read and write.
type MWMR struct {
	inner *NonResponsive
}

// NewMWMR builds the construction over 2t+1 fresh base registers and
// returns them for crash injection. t must be >= 0.
func NewMWMR(t int) (*MWMR, []*Base) {
	inner, bases := NewNonResponsive(t)
	return &MWMR{inner: inner}, bases
}

// Tolerance returns t, the number of base crashes tolerated.
func (m *MWMR) Tolerance() int { return m.inner.t }

// MWClient is one reader/writer of an MWMR register.
type MWClient struct {
	reg  *MWMR
	id   uint16
	last TimestampedValue
}

// NewClient returns a handle for the given writer identity. Identities
// must be unique across concurrent clients; reuse breaks tie-breaking.
func (m *MWMR) NewClient(id uint16) *MWClient {
	return &MWClient{reg: m, id: id}
}

// collect reads a majority of base registers and returns the freshest
// value found, merged with the handle's monotone cache.
func (c *MWClient) collect() (TimestampedValue, error) {
	inner := c.reg.inner
	results := make(chan readResult, len(inner.bases))
	for _, b := range inner.bases {
		b := b
		go func() {
			tv, err := b.Read()
			results <- readResult{tv: tv, err: err}
		}()
	}
	need := inner.t + 1
	best := c.last
	ok, failed := 0, 0
	for ok < need {
		res := <-results
		if res.err != nil {
			failed++
			if failed > inner.t {
				return best, fmt.Errorf("collect saw %d base failures (tolerance %d): %w",
					failed, inner.t, ErrCrashed)
			}
			continue
		}
		ok++
		if res.tv.Seq > best.Seq {
			best = res.tv
		}
	}
	c.last = best
	return best, nil
}

// Write performs the two-phase multi-writer write: collect the highest
// timestamp from a majority, then store data under a strictly larger one
// in a majority.
func (c *MWClient) Write(data int64) error {
	cur, err := c.collect()
	if err != nil {
		return err
	}
	round := roundOf(cur.Seq) + 1
	if round > maxRound {
		return fmt.Errorf("register: timestamp round overflow")
	}
	tv := TimestampedValue{Seq: packTS(round, c.id), Data: data}
	results := make(chan error, len(c.reg.inner.bases))
	for _, b := range c.reg.inner.bases {
		b := b
		go func() { results <- b.Write(tv) }()
	}
	if err := c.reg.inner.await(results, "mw-write"); err != nil {
		return err
	}
	if tv.Seq > c.last.Seq {
		c.last = tv
	}
	return nil
}

// Read returns the freshest value in a majority, never older than what
// this handle saw before.
func (c *MWClient) Read() (int64, error) {
	tv, err := c.collect()
	if err != nil {
		return 0, err
	}
	return tv.Data, nil
}
