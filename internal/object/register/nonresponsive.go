package register

import (
	"fmt"
	"sync/atomic"
)

// NonResponsive is the t-tolerant reliable register for the
// non-responsive-crash model. A crashed base register never answers, so
// sequential access would block forever; instead every operation is
// issued to all 2t+1 base registers in parallel and completes after a
// majority (t+1) of successes — which at most t silent crashes cannot
// prevent. Any two majorities intersect, so a read's majority contains at
// least one register holding the freshest completed write.
//
// Operations spawned toward non-responsive registers linger (they never
// return); that is the model, not a leak — tests Release them.
type NonResponsive struct {
	bases []Register
	t     int
	seq   atomic.Uint64
}

// NewNonResponsive builds the construction over 2t+1 fresh base registers
// and returns them for crash injection. t must be >= 0.
func NewNonResponsive(t int) (*NonResponsive, []*Base) {
	if t < 0 {
		panic("register: negative t")
	}
	n := 2*t + 1
	bases := make([]*Base, n)
	regs := make([]Register, n)
	for i := range bases {
		bases[i] = NewBase()
		regs[i] = bases[i]
	}
	return &NonResponsive{bases: regs, t: t}, bases
}

// Tolerance returns t, the number of base crashes tolerated.
func (r *NonResponsive) Tolerance() int { return r.t }

type readResult struct {
	tv  TimestampedValue
	err error
}

// Write stores data under a fresh sequence number in a majority of base
// registers. It returns once t+1 base writes succeeded, and fails with
// ErrCrashed when more than t base registers answered with failures
// (responsive crashes beyond the tolerance).
func (r *NonResponsive) Write(data int64) error {
	tv := TimestampedValue{Seq: r.seq.Add(1), Data: data}
	results := make(chan error, len(r.bases))
	for _, b := range r.bases {
		b := b
		go func() { results <- b.Write(tv) }()
	}
	return r.await(results, "write")
}

// await collects responses until a majority succeeded or too many failed.
func (r *NonResponsive) await(results chan error, op string) error {
	need := r.t + 1
	ok, failed := 0, 0
	for ok < need {
		if err := <-results; err == nil {
			ok++
		} else {
			failed++
			if failed > r.t {
				return fmt.Errorf("%s saw %d base failures (tolerance %d): %w", op, failed, r.t, ErrCrashed)
			}
		}
	}
	return nil
}

// NRReader is a reading handle over the non-responsive construction; as
// with Responsive readers it carries the per-handle monotone cache.
type NRReader struct {
	reg  *NonResponsive
	last TimestampedValue
}

// NewReader returns a fresh reading handle.
func (r *NonResponsive) NewReader() *NRReader { return &NRReader{reg: r} }

// Read returns the freshest value found in a majority of base registers,
// never older than what this handle returned before.
func (rd *NRReader) Read() (int64, error) {
	results := make(chan readResult, len(rd.reg.bases))
	for _, b := range rd.reg.bases {
		b := b
		go func() {
			tv, err := b.Read()
			results <- readResult{tv: tv, err: err}
		}()
	}
	need := rd.reg.t + 1
	best := rd.last
	ok, failed := 0, 0
	for ok < need {
		res := <-results
		if res.err != nil {
			failed++
			if failed > rd.reg.t {
				return 0, fmt.Errorf("read saw %d base failures (tolerance %d): %w", failed, rd.reg.t, ErrCrashed)
			}
			continue
		}
		ok++
		if res.tv.Seq > best.Seq {
			best = res.tv
		}
	}
	rd.last = best
	return best.Data, nil
}
