package register

import (
	"fmt"
	"sync/atomic"
)

// Responsive is the t-tolerant reliable register for the responsive-crash
// model: t+1 base registers, accessed sequentially, of which at least one
// survives. It is single-writer; create one Reader handle per reading
// goroutine (reads are atomic per handle).
type Responsive struct {
	bases []Register
	seq   atomic.Uint64
}

// NewResponsive builds the construction over t+1 fresh base registers
// and returns them for crash injection. t must be >= 0.
func NewResponsive(t int) (*Responsive, []*Base) {
	if t < 0 {
		panic("register: negative t")
	}
	bases := make([]*Base, t+1)
	regs := make([]Register, t+1)
	for i := range bases {
		bases[i] = NewBase()
		regs[i] = bases[i]
	}
	return &Responsive{bases: regs}, bases
}

// NewResponsiveFrom builds the construction over caller-supplied base
// registers (at least one).
func NewResponsiveFrom(bases []Register) *Responsive {
	if len(bases) == 0 {
		panic("register: no base registers")
	}
	cp := make([]Register, len(bases))
	copy(cp, bases)
	return &Responsive{bases: cp}
}

// Tolerance returns t, the number of base crashes tolerated.
func (r *Responsive) Tolerance() int { return len(r.bases) - 1 }

// Write stores data in every non-crashed base register under a fresh
// sequence number. It fails with ErrCrashed only when every base register
// has crashed (more failures than tolerated). Single writer: concurrent
// Writes are outside the construction's specification.
func (r *Responsive) Write(data int64) error {
	tv := TimestampedValue{Seq: r.seq.Add(1), Data: data}
	ok := 0
	for _, b := range r.bases {
		if err := b.Write(tv); err == nil {
			ok++
		}
	}
	if ok == 0 {
		return fmt.Errorf("write lost all %d base registers: %w", len(r.bases), ErrCrashed)
	}
	return nil
}

// Reader is a reading handle: it carries the monotone timestamp cache
// that makes reads atomic for this handle (no new/old inversion).
type Reader struct {
	reg  *Responsive
	last TimestampedValue
}

// NewReader returns a fresh reading handle.
func (r *Responsive) NewReader() *Reader { return &Reader{reg: r} }

// Read returns the freshest surviving value, never older than what this
// handle returned before. It fails with ErrCrashed only when every base
// register has crashed.
func (rd *Reader) Read() (int64, error) {
	best := rd.last
	ok := 0
	for _, b := range rd.reg.bases {
		tv, err := b.Read()
		if err != nil {
			continue
		}
		ok++
		if tv.Seq > best.Seq {
			best = tv
		}
	}
	if ok == 0 {
		return 0, fmt.Errorf("read lost all %d base registers: %w", len(rd.reg.bases), ErrCrashed)
	}
	rd.last = best
	return best.Data, nil
}
