package register

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestMWMRBasic(t *testing.T) {
	m, _ := NewMWMR(2)
	if m.Tolerance() != 2 {
		t.Fatalf("Tolerance = %d", m.Tolerance())
	}
	a := m.NewClient(1)
	b := m.NewClient(2)
	if v, err := a.Read(); err != nil || v != 0 {
		t.Fatalf("initial read = %v, %v", v, err)
	}
	if err := a.Write(11); err != nil {
		t.Fatal(err)
	}
	if v, err := b.Read(); err != nil || v != 11 {
		t.Fatalf("cross-client read = %v, %v", v, err)
	}
	// The second writer's write must supersede the first's.
	if err := b.Write(22); err != nil {
		t.Fatal(err)
	}
	if v, err := a.Read(); err != nil || v != 22 {
		t.Fatalf("read after second writer = %v, %v", v, err)
	}
}

func TestMWMRTimestampPacking(t *testing.T) {
	ts := packTS(5, 9)
	if roundOf(ts) != 5 {
		t.Fatalf("roundOf(packTS(5,9)) = %d", roundOf(ts))
	}
	// Same round, higher writer id wins the tie (strictly larger word).
	if packTS(5, 9) <= packTS(5, 8) {
		t.Fatal("writer tie-break not monotone")
	}
	// A higher round always beats any writer id.
	if packTS(6, 0) <= packTS(5, 0xffff) {
		t.Fatal("round does not dominate writer id")
	}
}

func TestMWMRSurvivesSilentCrashes(t *testing.T) {
	m, bases := NewMWMR(2)
	bases[0].CrashNonResponsive()
	bases[3].CrashNonResponsive()
	defer bases[0].Release()
	defer bases[3].Release()
	done := make(chan struct{})
	go func() {
		defer close(done)
		a := m.NewClient(1)
		if err := a.Write(5); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		if v, err := m.NewClient(2).Read(); err != nil || v != 5 {
			t.Errorf("read = %v, %v", v, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("MWMR blocked despite <= t silent crashes")
	}
}

func TestMWMRFailsBeyondResponsiveTolerance(t *testing.T) {
	m, bases := NewMWMR(1)
	bases[0].CrashResponsive()
	bases[1].CrashResponsive()
	c := m.NewClient(1)
	if err := c.Write(1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write beyond tolerance: %v", err)
	}
	if _, err := c.Read(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read beyond tolerance: %v", err)
	}
}

func TestMWMRConcurrentWritersConverge(t *testing.T) {
	m, _ := NewMWMR(2)
	const writers = 6
	const rounds = 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := m.NewClient(uint16(w + 1))
			for i := 0; i < rounds; i++ {
				if err := c.Write(int64(w*1000 + i)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// All writers done: every fresh reader agrees on one final value,
	// and it is some writer's last write.
	v1, err1 := m.NewClient(100).Read()
	v2, err2 := m.NewClient(101).Read()
	if err1 != nil || err2 != nil || v1 != v2 {
		t.Fatalf("final reads disagree: %v/%v, %v/%v", v1, err1, v2, err2)
	}
	if v1%1000 != rounds-1 {
		t.Fatalf("final value %d is not some writer's last write", v1)
	}
}

func TestMWMRReaderMonotonePerHandle(t *testing.T) {
	m, _ := NewMWMR(1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := m.NewClient(1)
		for i := int64(0); i < 500; i++ {
			if err := c.Write(i); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
		close(stop)
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rd := m.NewClient(uint16(10 + g))
			last := int64(-1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, err := rd.Read()
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if v < last {
					t.Errorf("handle regressed: %d after %d", v, last)
					return
				}
				last = v
			}
		}()
	}
	wg.Wait()
}

func BenchmarkMWMRWrite(b *testing.B) {
	m, _ := NewMWMR(2)
	c := m.NewClient(1)
	for i := 0; i < b.N; i++ {
		_ = c.Write(int64(i))
	}
}
