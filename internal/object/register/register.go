// Package register builds reliable atomic registers out of unreliable
// ones — the self-implementation question of the companion tutorial
// (Guerraoui & Raynal, same proceedings) that the paper's research
// programme uses as its "what can be computed" substrate.
//
// The object failure model (internal/object/objfail) distinguishes
// responsive crashes (operations fail fast forever after) from
// non-responsive crashes (operations never return). The package provides
// a t-tolerant wait-free self-implementation for each model:
//
//   - Responsive: t+1 base registers accessed sequentially;
//   - NonResponsive: 2t+1 base registers accessed in parallel, waiting
//     for a majority of responses.
//
// Both constructions provide single-writer registers whose reads are
// atomic per reader handle (the classical SWSR self-implementations; a
// reader handle carries the monotone timestamp cache that rules out
// new/old inversion). The tests also witness the negative side: with only
// t+1 base registers, a single non-responsive crash can block a reader
// forever.
//
// Unlike the rest of the repository, this package runs on real goroutines
// and sync/atomic — wait-freedom is a property of genuine concurrency,
// not of a simulated schedule.
package register

import (
	"sync/atomic"

	"repro/internal/object/objfail"
)

// ErrCrashed is returned by a crashed base register and by reliable
// constructions that lost more base objects than they tolerate.
var ErrCrashed = objfail.ErrCrashed

// TimestampedValue is what the reliable constructions store in base
// registers: the writer's sequence number makes values comparable.
type TimestampedValue struct {
	Seq  uint64
	Data int64
}

// Register is the minimal register API the constructions build on.
type Register interface {
	Write(tv TimestampedValue) error
	Read() (TimestampedValue, error)
}

// Base is an unreliable atomic register with crash injection. Construct
// with NewBase.
type Base struct {
	objfail.Injector
	val atomic.Pointer[TimestampedValue]
}

// NewBase returns a healthy base register holding the zero value.
func NewBase() *Base {
	b := &Base{}
	b.val.Store(&TimestampedValue{})
	return b
}

// Write implements Register.
func (b *Base) Write(tv TimestampedValue) error {
	if err := b.Enter(); err != nil {
		return err
	}
	v := tv
	b.val.Store(&v)
	return nil
}

// Read implements Register.
func (b *Base) Read() (TimestampedValue, error) {
	if err := b.Enter(); err != nil {
		return TimestampedValue{}, err
	}
	return *b.val.Load(), nil
}

var _ Register = (*Base)(nil)
