package register

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestBaseReadWrite(t *testing.T) {
	b := NewBase()
	if tv, err := b.Read(); err != nil || tv.Seq != 0 {
		t.Fatalf("fresh base read = %+v, %v", tv, err)
	}
	if err := b.Write(TimestampedValue{Seq: 3, Data: 42}); err != nil {
		t.Fatal(err)
	}
	tv, err := b.Read()
	if err != nil || tv.Data != 42 || tv.Seq != 3 {
		t.Fatalf("base read = %+v, %v", tv, err)
	}
}

func TestBaseResponsiveCrash(t *testing.T) {
	b := NewBase()
	b.CrashResponsive()
	if !b.Crashed() {
		t.Fatal("Crashed() false after crash")
	}
	if err := b.Write(TimestampedValue{Seq: 1}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write on crashed base: %v", err)
	}
	if _, err := b.Read(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read on crashed base: %v", err)
	}
}

func TestBaseNonResponsiveCrashBlocks(t *testing.T) {
	b := NewBase()
	b.CrashNonResponsive()
	done := make(chan error, 1)
	go func() { _, err := b.Read(); done <- err }()
	select {
	case err := <-done:
		t.Fatalf("read on non-responsive base returned: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	b.Release()
	if err := <-done; !errors.Is(err, ErrCrashed) {
		t.Fatalf("released read: %v", err)
	}
}

func TestBaseCrashAfter(t *testing.T) {
	b := NewBase()
	b.CrashAfter(2, true)
	if err := b.Write(TimestampedValue{Seq: 1}); err != nil {
		t.Fatalf("op 1: %v", err)
	}
	if _, err := b.Read(); err != nil {
		t.Fatalf("op 2: %v", err)
	}
	if _, err := b.Read(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("op 3 should crash, got %v", err)
	}
}

func TestResponsiveBasic(t *testing.T) {
	r, _ := NewResponsive(2)
	if r.Tolerance() != 2 {
		t.Fatalf("Tolerance = %d", r.Tolerance())
	}
	rd := r.NewReader()
	if v, err := rd.Read(); err != nil || v != 0 {
		t.Fatalf("initial read = %v, %v", v, err)
	}
	for i := int64(1); i <= 10; i++ {
		if err := r.Write(i * 11); err != nil {
			t.Fatal(err)
		}
		if v, err := rd.Read(); err != nil || v != i*11 {
			t.Fatalf("read after write %d = %v, %v", i, v, err)
		}
	}
}

func TestResponsiveSurvivesTCrashes(t *testing.T) {
	const tol = 3
	r, bases := NewResponsive(tol)
	if err := r.Write(7); err != nil {
		t.Fatal(err)
	}
	// Crash t of t+1 base registers.
	for i := 0; i < tol; i++ {
		bases[i].CrashResponsive()
	}
	if err := r.Write(8); err != nil {
		t.Fatalf("write with t crashes: %v", err)
	}
	rd := r.NewReader()
	if v, err := rd.Read(); err != nil || v != 8 {
		t.Fatalf("read with t crashes = %v, %v", v, err)
	}
}

func TestResponsiveFailsBeyondTolerance(t *testing.T) {
	r, bases := NewResponsive(1)
	for _, b := range bases {
		b.CrashResponsive()
	}
	if err := r.Write(1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write with t+1 crashes: %v", err)
	}
	rd := r.NewReader()
	if _, err := rd.Read(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read with t+1 crashes: %v", err)
	}
}

// The new/old inversion scenario: base 0 holds the new value and crashes;
// a per-handle cache must keep the reader from going back in time.
func TestResponsiveReaderMonotoneUnderPartialWrite(t *testing.T) {
	b0, b1 := NewBase(), NewBase()
	r := NewResponsiveFrom([]Register{b0, b1})
	if err := r.Write(1); err != nil { // seq 1 everywhere
		t.Fatal(err)
	}
	// Simulate a partial second write: only base 0 has seq 2.
	if err := b0.Write(TimestampedValue{Seq: 2, Data: 2}); err != nil {
		t.Fatal(err)
	}
	rd := r.NewReader()
	if v, _ := rd.Read(); v != 2 {
		t.Fatalf("read = %v, want 2", v)
	}
	b0.CrashResponsive()
	// Only base 1 (seq 1) is left; the handle must not regress to 1.
	if v, err := rd.Read(); err != nil || v != 2 {
		t.Fatalf("read after crash = %v, %v; new/old inversion", v, err)
	}
	// A FRESH handle legitimately sees the old value — that is exactly
	// why atomicity is per handle.
	if v, _ := r.NewReader().Read(); v != 1 {
		t.Fatalf("fresh handle read = %v, want 1", v)
	}
}

func TestResponsiveConcurrentReadersMonotone(t *testing.T) {
	r, bases := NewResponsive(2)
	// Crash one base mid-run, non-fatally.
	bases[1].CrashAfter(500, true)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // single writer
		defer wg.Done()
		for i := int64(1); i <= 2000; i++ {
			if err := r.Write(i); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
		close(stop)
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rd := r.NewReader()
			last := int64(-1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, err := rd.Read()
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if v < last {
					t.Errorf("reader regressed: %d after %d", v, last)
					return
				}
				last = v
			}
		}()
	}
	wg.Wait()
}

func TestNonResponsiveBasic(t *testing.T) {
	r, _ := NewNonResponsive(2)
	if r.Tolerance() != 2 {
		t.Fatalf("Tolerance = %d", r.Tolerance())
	}
	rd := r.NewReader()
	for i := int64(1); i <= 5; i++ {
		if err := r.Write(i); err != nil {
			t.Fatal(err)
		}
		if v, err := rd.Read(); err != nil || v != i {
			t.Fatalf("read = %v, %v, want %d", v, err, i)
		}
	}
}

func TestNonResponsiveSurvivesTSilentCrashes(t *testing.T) {
	const tol = 2
	r, bases := NewNonResponsive(tol)
	for i := 0; i < tol; i++ {
		bases[i].CrashNonResponsive()
	}
	defer func() {
		for i := 0; i < tol; i++ {
			bases[i].Release()
		}
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := r.Write(9); err != nil {
			t.Errorf("write with %d silent crashes: %v", tol, err)
			return
		}
		rd := r.NewReader()
		if v, err := rd.Read(); err != nil || v != 9 {
			t.Errorf("read with %d silent crashes = %v, %v", tol, v, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("majority construction blocked despite <= t silent crashes (not wait-free)")
	}
}

// The impossibility witness: with only t+1 base registers (no majority
// margin), a single non-responsive crash blocks the sequential
// construction forever.
func TestSequentialBlocksOnNonResponsiveCrash(t *testing.T) {
	b0, b1 := NewBase(), NewBase()
	r := NewResponsiveFrom([]Register{b0, b1}) // t = 1 would need majority machinery
	b0.CrashNonResponsive()
	defer b0.Release()
	done := make(chan struct{})
	go func() {
		_ = r.Write(5) // blocks inside base 0
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("sequential construction returned despite a non-responsive crash")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestNonResponsiveFailsBeyondResponsiveTolerance(t *testing.T) {
	r, bases := NewNonResponsive(1) // 3 bases
	bases[0].CrashResponsive()
	bases[1].CrashResponsive()
	if err := r.Write(1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write with t+1 responsive crashes: %v", err)
	}
	rd := r.NewReader()
	if _, err := rd.Read(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read with t+1 responsive crashes: %v", err)
	}
}

func TestNonResponsiveConcurrentStress(t *testing.T) {
	r, bases := NewNonResponsive(2)
	bases[4].CrashNonResponsive()
	defer bases[4].Release()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(1); i <= 300; i++ {
			if err := r.Write(i); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rd := r.NewReader()
			last := int64(-1)
			for i := 0; i < 300; i++ {
				v, err := rd.Read()
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if v < last {
					t.Errorf("reader regressed: %d after %d", v, last)
					return
				}
				last = v
			}
		}()
	}
	wg.Wait()
}

func TestConstructorValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"responsive negative t":     func() { NewResponsive(-1) },
		"non-responsive negative t": func() { NewNonResponsive(-1) },
		"from empty":                func() { NewResponsiveFrom(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkResponsiveWrite(b *testing.B) {
	r, _ := NewResponsive(2)
	for i := 0; i < b.N; i++ {
		_ = r.Write(int64(i))
	}
}

func BenchmarkNonResponsiveWrite(b *testing.B) {
	r, _ := NewNonResponsive(2)
	for i := 0; i < b.N; i++ {
		_ = r.Write(int64(i))
	}
}

func BenchmarkResponsiveRead(b *testing.B) {
	r, _ := NewResponsive(2)
	_ = r.Write(1)
	rd := r.NewReader()
	for i := 0; i < b.N; i++ {
		_, _ = rd.Read()
	}
}
