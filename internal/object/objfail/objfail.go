// Package objfail implements the object failure model shared by the
// unreliable base objects (registers, consensus): an object can suffer a
// responsive crash — after which every operation fails fast — or a
// non-responsive crash — after which operations never return.
package objfail

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrCrashed is the fast failure of a responsively-crashed object (also
// returned by parked operations force-released during test cleanup).
var ErrCrashed = errors.New("object: crashed")

// Crash states.
const (
	healthy int32 = iota
	responsive
	nonResponsive
)

// Injector gates every operation of an unreliable object. The zero value
// is a healthy injector.
type Injector struct {
	state atomic.Int32

	blockOnce sync.Once
	block     chan struct{}
	released  atomic.Bool

	ops        atomic.Int64
	crashAfter atomic.Int64
	crashKind  atomic.Int32
}

// CrashResponsive makes every future operation fail fast.
func (in *Injector) CrashResponsive() { in.state.Store(responsive) }

// CrashNonResponsive makes every future operation block forever (until
// Release).
func (in *Injector) CrashNonResponsive() { in.state.Store(nonResponsive) }

// CrashAfter arms a crash that triggers once n more operations have
// started: responsive style if responsiveStyle, non-responsive otherwise.
func (in *Injector) CrashAfter(n int64, responsiveStyle bool) {
	kind := nonResponsive
	if responsiveStyle {
		kind = responsive
	}
	in.crashKind.Store(kind)
	in.ops.Store(0)
	in.crashAfter.Store(n)
}

// Crashed reports whether the object has crashed in either style.
func (in *Injector) Crashed() bool { return in.state.Load() != healthy }

// Release unblocks operations parked by a non-responsive crash; they
// return ErrCrashed. Intended for test cleanup only — semantically those
// operations never return.
func (in *Injector) Release() {
	in.ensureBlock()
	if in.released.CompareAndSwap(false, true) {
		close(in.block)
	}
}

func (in *Injector) ensureBlock() {
	in.blockOnce.Do(func() { in.block = make(chan struct{}) })
}

// Enter performs crash bookkeeping at the start of an operation: it
// returns ErrCrashed after a responsive crash and parks the caller after
// a non-responsive one.
func (in *Injector) Enter() error {
	if n := in.crashAfter.Load(); n > 0 {
		if in.ops.Add(1) > n {
			in.state.CompareAndSwap(healthy, in.crashKind.Load())
		}
	}
	switch in.state.Load() {
	case responsive:
		return ErrCrashed
	case nonResponsive:
		in.ensureBlock()
		<-in.block
		return ErrCrashed
	}
	return nil
}
