package objfail

import (
	"errors"
	"testing"
	"time"
)

func TestHealthyEnter(t *testing.T) {
	var in Injector
	for i := 0; i < 10; i++ {
		if err := in.Enter(); err != nil {
			t.Fatalf("healthy Enter failed: %v", err)
		}
	}
	if in.Crashed() {
		t.Fatal("healthy injector reports crashed")
	}
}

func TestResponsiveCrash(t *testing.T) {
	var in Injector
	in.CrashResponsive()
	if err := in.Enter(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Enter after responsive crash: %v", err)
	}
	if !in.Crashed() {
		t.Fatal("Crashed() false")
	}
}

func TestNonResponsiveParksUntilRelease(t *testing.T) {
	var in Injector
	in.CrashNonResponsive()
	done := make(chan error, 1)
	go func() { done <- in.Enter() }()
	select {
	case err := <-done:
		t.Fatalf("Enter returned %v; should park", err)
	case <-time.After(30 * time.Millisecond):
	}
	in.Release()
	if err := <-done; !errors.Is(err, ErrCrashed) {
		t.Fatalf("released Enter: %v", err)
	}
	// Entering after release still reports the crash.
	if err := in.Enter(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Enter after release: %v", err)
	}
	in.Release() // double release is a no-op
}

func TestCrashAfterCountsOperations(t *testing.T) {
	var in Injector
	in.CrashAfter(3, true)
	for i := 0; i < 3; i++ {
		if err := in.Enter(); err != nil {
			t.Fatalf("op %d failed early: %v", i+1, err)
		}
	}
	if err := in.Enter(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("op 4 should crash: %v", err)
	}
}

func TestCrashAfterRearm(t *testing.T) {
	var in Injector
	in.CrashAfter(100, true)
	_ = in.Enter()
	in.CrashAfter(1, true) // re-arm resets the counter
	if err := in.Enter(); err != nil {
		t.Fatalf("first op after re-arm: %v", err)
	}
	if err := in.Enter(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("second op after re-arm should crash: %v", err)
	}
}

func TestExplicitCrashWinsOverCrashAfter(t *testing.T) {
	var in Injector
	in.CrashAfter(100, false)
	in.CrashResponsive()
	if err := in.Enter(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("explicit crash ignored: %v", err)
	}
}
