// Package universal implements Herlihy's universal construction: any
// object defined by a sequential specification, made wait-free and
// linearizable out of consensus objects. It is the capstone of the
// reliable-object substrate (claim C6): together with
// internal/object/consensus it shows that once reliable consensus has
// been self-implemented from unreliable parts, *every* sequentially
// specified object follows.
//
// The construction is the classic consensus-per-log-cell one: clients
// race to decide their command into the next log cell; losers apply the
// winning command to their local replica and retry in the next cell.
// Commands carry a (client, sequence) identity so an identical argument
// proposed by two invocations is never confused. Every client replays the
// same decided prefix, so replicas agree at every position —
// linearizability for free, wait-freedom inherited from the consensus
// objects (each retry advances the log by one decided command; a capacity
// bound backstops the log).
//
// ObjectOf is generic in the replica state: any Go type driven by a pure
// apply function works — counters, ledgers, logs, sets. Object/Client are
// the int64 instantiation most callers need.
package universal

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/object/consensus"
)

// ErrCapacity is returned when the pre-allocated log is exhausted.
var ErrCapacity = errors.New("universal: log capacity exhausted")

// Command is one invocation: identity plus argument.
type Command struct {
	Client uint64
	Seq    uint64
	Arg    int64
}

// Apply is the int64 object's sequential specification.
type Apply func(state, arg int64) int64

// ObjectOf is a wait-free linearizable object with replica state S, built
// from consensus cells. The apply function must be pure — every replica
// replays it.
type ObjectOf[S any] struct {
	apply   func(S, int64) S
	initial S
	cells   []*consensus.ResponsiveOf[Command]
	bases   [][]*consensus.BaseOf[Command]
	clients atomic.Uint64
}

// NewOf builds an object over state type S: sequential specification
// apply, initial state, a log capacity of capacity commands, and each log
// cell's consensus tolerating t responsive base-object crashes.
func NewOf[S any](apply func(S, int64) S, initial S, capacity, t int) *ObjectOf[S] {
	if apply == nil {
		panic("universal: nil apply")
	}
	if capacity <= 0 {
		panic("universal: non-positive capacity")
	}
	o := &ObjectOf[S]{apply: apply, initial: initial}
	o.cells = make([]*consensus.ResponsiveOf[Command], capacity)
	o.bases = make([][]*consensus.BaseOf[Command], capacity)
	for i := range o.cells {
		o.cells[i], o.bases[i] = consensus.NewResponsiveOf[Command](t)
	}
	return o
}

// Object is the int64 instantiation of ObjectOf.
type Object = ObjectOf[int64]

// New builds an int64-state object; see NewOf.
func New(apply Apply, initial int64, capacity, t int) *Object {
	if apply == nil {
		panic("universal: nil apply")
	}
	return NewOf[int64](func(s, a int64) int64 { return apply(s, a) }, initial, capacity, t)
}

// CellBases exposes cell i's base consensus objects for crash injection
// in tests and experiments.
func (o *ObjectOf[S]) CellBases(i int) []*consensus.BaseOf[Command] { return o.bases[i] }

// Capacity returns the log capacity.
func (o *ObjectOf[S]) Capacity() int { return len(o.cells) }

// ClientOf is one invoker with its local replica. Clients are not safe
// for concurrent use; create one per goroutine.
type ClientOf[S any] struct {
	obj   *ObjectOf[S]
	id    uint64
	seq   uint64
	pos   int
	state S
}

// Client is the int64 instantiation of ClientOf.
type Client = ClientOf[int64]

// NewClient returns a fresh client with a unique identity.
func (o *ObjectOf[S]) NewClient() *ClientOf[S] {
	return &ClientOf[S]{obj: o, id: o.clients.Add(1), state: o.initial}
}

// State returns the client's current replica state (the state after the
// log prefix it has replayed).
func (c *ClientOf[S]) State() S { return c.state }

// Invoke appends arg to the object's history and returns the state right
// after this invocation took effect. Concurrent invocations by other
// clients may be ordered before it; all replicas apply them identically.
func (c *ClientOf[S]) Invoke(arg int64) (S, error) {
	c.seq++
	cmd := Command{Client: c.id, Seq: c.seq, Arg: arg}
	for {
		if c.pos >= len(c.obj.cells) {
			return c.state, fmt.Errorf("invoke at position %d: %w", c.pos, ErrCapacity)
		}
		decided, err := c.obj.cells[c.pos].Propose(cmd)
		if err != nil {
			return c.state, fmt.Errorf("log cell %d: %w", c.pos, err)
		}
		c.state = c.obj.apply(c.state, decided.Arg)
		c.pos++
		if decided == cmd {
			return c.state, nil
		}
	}
}

// Sync replays any commands other clients have decided beyond this
// client's position, without appending anything. It returns the state
// after the longest decided prefix currently visible. Sync is
// conservative: it can lag behind the true log when a cell's last base
// object crashed before deciding (see peek); Invoke never lags.
func (c *ClientOf[S]) Sync() S {
	for c.pos < len(c.obj.cells) {
		decided, ok := c.peek(c.pos)
		if !ok {
			break
		}
		c.state = c.obj.apply(c.state, decided.Arg)
		c.pos++
	}
	return c.state
}

// peek returns cell i's agreed command without proposing anything. Only
// the LAST base object's decision is trustworthy here: estimates converge
// at the first never-crashing base, so any later base that decides —
// including the last — decides the final value, whereas an earlier base
// can hold a value decided mid-convergence that never became the
// outcome. If the last base has not decided (or crashed undecided), peek
// reports not-known-yet.
func (c *ClientOf[S]) peek(i int) (Command, bool) {
	bases := c.obj.bases[i]
	return bases[len(bases)-1].Decided()
}
