package universal

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/rng"
)

func counter() Apply { return func(state, arg int64) int64 { return state + arg } }

func TestSequentialCounter(t *testing.T) {
	o := New(counter(), 0, 64, 2)
	c := o.NewClient()
	for i := int64(1); i <= 10; i++ {
		got, err := c.Invoke(i)
		if err != nil {
			t.Fatal(err)
		}
		want := i * (i + 1) / 2
		if got != want {
			t.Fatalf("after invoking 1..%d: state %d, want %d", i, got, want)
		}
	}
	if o.Capacity() != 64 {
		t.Fatalf("Capacity = %d", o.Capacity())
	}
}

func TestTwoClientsInterleaved(t *testing.T) {
	o := New(counter(), 100, 64, 1)
	a, b := o.NewClient(), o.NewClient()
	if _, err := a.Invoke(1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Invoke(10); err != nil {
		t.Fatal(err)
	}
	// b raced past a's command: its state must include BOTH.
	if b.State() != 111 {
		t.Fatalf("b.State() = %d, want 111", b.State())
	}
	// a lags until it syncs or invokes again.
	a.Sync()
	if a.State() != 111 {
		t.Fatalf("a.State() after Sync = %d, want 111", a.State())
	}
}

func TestConcurrentClientsAgree(t *testing.T) {
	const procs = 8
	const opsEach = 20
	o := New(counter(), 0, procs*opsEach+8, 2)
	var wg sync.WaitGroup
	clients := make([]*Client, procs)
	for i := 0; i < procs; i++ {
		clients[i] = o.NewClient()
	}
	for i := 0; i < procs; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < opsEach; k++ {
				if _, err := clients[i].Invoke(int64(i + 1)); err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Total effect: sum of all increments, regardless of interleaving.
	want := int64(0)
	for i := 1; i <= procs; i++ {
		want += int64(i) * opsEach
	}
	for i, c := range clients {
		c.Sync()
		if c.State() != want {
			t.Fatalf("client %d converged to %d, want %d", i, c.State(), want)
		}
	}
}

func TestLinearizabilityNonCommutative(t *testing.T) {
	// Apply is "state*10 + arg": order-sensitive. All replicas must end
	// with the identical digit string.
	apply := func(state, arg int64) int64 { return state*10 + arg }
	o := New(apply, 0, 32, 1)
	const procs = 6
	clients := make([]*Client, procs)
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		clients[i] = o.NewClient()
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := clients[i].Invoke(int64(i + 1)); err != nil {
				t.Errorf("client %d: %v", i, err)
			}
		}()
	}
	wg.Wait()
	for _, c := range clients {
		c.Sync()
	}
	for i := 1; i < procs; i++ {
		if clients[i].State() != clients[0].State() {
			t.Fatalf("replicas diverged: %d vs %d", clients[i].State(), clients[0].State())
		}
	}
}

func TestSurvivesBaseCrashes(t *testing.T) {
	o := New(counter(), 0, 32, 2)
	// Crash t=2 of 3 base objects in several cells, at staggered points.
	r := rng.New(5)
	for cell := 0; cell < 8; cell++ {
		bases := o.CellBases(cell)
		for k := 0; k < 2; k++ {
			bases[r.Intn(len(bases))].CrashAfter(int64(1+r.Intn(4)), true)
		}
	}
	const procs = 4
	clients := make([]*Client, procs)
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		clients[i] = o.NewClient()
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 3; k++ {
				if _, err := clients[i].Invoke(1); err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, c := range clients {
		c.Sync()
		if c.State() != procs*3 {
			t.Fatalf("state %d under crashes, want %d", c.State(), procs*3)
		}
	}
}

func TestCapacityExhaustion(t *testing.T) {
	o := New(counter(), 0, 3, 1)
	c := o.NewClient()
	for i := 0; i < 3; i++ {
		if _, err := c.Invoke(1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Invoke(1); !errors.Is(err, ErrCapacity) {
		t.Fatalf("beyond capacity: %v", err)
	}
}

func TestIdenticalArgumentsNotConfused(t *testing.T) {
	// Two invocations with the same argument are distinct commands: both
	// must take effect.
	o := New(counter(), 0, 16, 1)
	a, b := o.NewClient(), o.NewClient()
	done := make(chan struct{}, 2)
	go func() { a.Invoke(5); done <- struct{}{} }() //nolint:errcheck
	go func() { b.Invoke(5); done <- struct{}{} }() //nolint:errcheck
	<-done
	<-done
	c := o.NewClient()
	if got := c.Sync(); got != 10 {
		t.Fatalf("state %d, want 10 (both identical-arg invocations applied)", got)
	}
}

func TestConstructorValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"nil apply":    func() { New(nil, 0, 4, 1) },
		"zero cap":     func() { New(counter(), 0, 0, 1) },
		"negative tol": func() { New(counter(), 0, 4, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkInvoke(b *testing.B) {
	o := New(counter(), 0, b.N+1, 1)
	c := o.NewClient()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Invoke(1); err != nil {
			b.Fatal(err)
		}
	}
}
