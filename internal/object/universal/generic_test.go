package universal

import (
	"fmt"
	"sync"
	"testing"
)

// A replicated append-only log over string state: the order-sensitive
// structure that makes linearizability visible, with a non-numeric state
// type exercising the generic construction.
func TestGenericStringLog(t *testing.T) {
	apply := func(state string, arg int64) string {
		if state == "" {
			return fmt.Sprintf("%d", arg)
		}
		return fmt.Sprintf("%s|%d", state, arg)
	}
	o := NewOf[string](apply, "", 32, 1)
	const procs = 6
	clients := make([]*ClientOf[string], procs)
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		clients[i] = o.NewClient()
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 3; k++ {
				if _, err := clients[i].Invoke(int64(i*10 + k)); err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	final := clients[0].Sync()
	for i, c := range clients {
		if got := c.Sync(); got != final {
			t.Fatalf("replica %d diverged:\n  %q\n  %q", i, got, final)
		}
	}
	// All 18 invocations appear exactly once.
	count := 1
	for _, ch := range final {
		if ch == '|' {
			count++
		}
	}
	if count != procs*3 {
		t.Fatalf("log holds %d entries, want %d: %q", count, procs*3, final)
	}
}

// A replicated bounded set over a map-free state: membership bitmask.
func TestGenericBitmaskSet(t *testing.T) {
	apply := func(state uint64, arg int64) uint64 { return state | 1<<uint(arg%64) }
	o := NewOf[uint64](apply, 0, 16, 1)
	a, b := o.NewClient(), o.NewClient()
	if _, err := a.Invoke(3); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Invoke(7); err != nil {
		t.Fatal(err)
	}
	want := uint64(1<<3 | 1<<7)
	if got := a.Sync(); got != want {
		t.Fatalf("set = %b, want %b", got, want)
	}
}

func TestGenericValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewOf with nil apply did not panic")
		}
	}()
	NewOf[string](nil, "", 4, 1)
}
