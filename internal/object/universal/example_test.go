package universal_test

import (
	"fmt"

	"repro/internal/object/universal"
)

// Any sequentially specified object becomes wait-free and linearizable
// once consensus is available: here, a counter whose cells each tolerate
// one base-object crash.
func Example() {
	counter := universal.New(func(state, arg int64) int64 { return state + arg }, 0, 16, 1)

	alice := counter.NewClient()
	bob := counter.NewClient()

	v, _ := alice.Invoke(5)
	fmt.Println("alice sees", v)
	v, _ = bob.Invoke(10) // bob replays alice's command first
	fmt.Println("bob sees", v)
	fmt.Println("alice syncs to", alice.Sync())
	// Output:
	// alice sees 5
	// bob sees 15
	// alice syncs to 15
}
