package snapshot

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestSequential(t *testing.T) {
	s := New(3)
	if s.N() != 3 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Scan(); got[0] != 0 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("fresh scan = %v", got)
	}
	s.Update(0, 10)
	s.Update(2, 30)
	got := s.Scan()
	if got[0] != 10 || got[1] != 0 || got[2] != 30 {
		t.Fatalf("scan = %v, want [10 0 30]", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Update(5) did not panic")
		}
	}()
	s.Update(5, 1)
}

func TestZeroCellsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

// Each writer i writes an ever-increasing counter into its cell. Scans
// must be monotone per cell over time (a later scan never shows an older
// value) and internally consistent.
func TestConcurrentScansMonotone(t *testing.T) {
	const writers = 4
	s := New(writers)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := int64(1); v <= 300; v++ {
				s.Update(w, v)
			}
		}()
	}
	var scanners sync.WaitGroup
	for g := 0; g < 3; g++ {
		scanners.Add(1)
		go func() {
			defer scanners.Done()
			last := make([]int64, writers)
			for !stop.Load() {
				got := s.Scan()
				for i := range got {
					if got[i] < last[i] {
						t.Errorf("cell %d regressed: %d after %d", i, got[i], last[i])
						return
					}
					last[i] = got[i]
				}
			}
		}()
	}
	wg.Wait() // writers done
	stop.Store(true)
	scanners.Wait()
	if got := s.Scan(); got[0] != 300 {
		t.Fatalf("final scan = %v", got)
	}
}

// The atomicity witness: writers keep an invariant (cells always sum to
// 0 after each pair of updates is complete... instead use paired writers
// below), scans must never observe a torn intermediate state for the
// double-collect path. We use two cells updated by one writer through a
// helper goroutine pair: writer A writes x to cell 0 then -x to cell 1;
// the sum of a scan is 0 or x-in-flight. Since atomic snapshots
// linearize, the observed (c0, c1) pair must equal some prefix state:
// c0's value is either c1's negation or one step ahead.
func TestScanObservesConsistentCut(t *testing.T) {
	s := New(2)
	var wg sync.WaitGroup
	var stop atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		for x := int64(1); x <= 500; x++ {
			s.Update(0, x)
			s.Update(1, -x)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			got := s.Scan()
			sum := got[0] + got[1]
			// Valid cuts: between iterations (sum 0) or mid-iteration
			// (cell 0 one step ahead: sum 1).
			if sum != 0 && sum != 1 {
				t.Errorf("torn scan %v (sum %d)", got, sum)
				return
			}
		}
	}()
	// Stop the scanner once the writer finished.
	go func() {
		for {
			got := s.Scan()
			if got[0] == 500 && got[1] == -500 {
				stop.Store(true)
				return
			}
		}
	}()
	wg.Wait()
}

func TestEmbeddedSnapshotHelping(t *testing.T) {
	// Force the helping path: a writer that updates twice between a
	// scanner's collects hands over its embedded snapshot. Hard to force
	// deterministically without hooks; instead hammer a single cell from
	// one writer while scanning and assert scans stay well-formed.
	s := New(2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := int64(1); v <= 2000; v++ {
			s.Update(0, v)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		last := int64(0)
		for i := 0; i < 2000; i++ {
			got := s.Scan()
			if len(got) != 2 {
				t.Errorf("scan length %d", len(got))
				return
			}
			if got[0] < last {
				t.Errorf("helping path returned stale snapshot: %d after %d", got[0], last)
				return
			}
			last = got[0]
		}
	}()
	wg.Wait()
}

func BenchmarkUpdate(b *testing.B) {
	s := New(4)
	for i := 0; i < b.N; i++ {
		s.Update(0, int64(i))
	}
}

func BenchmarkScan(b *testing.B) {
	s := New(8)
	for i := 0; i < 8; i++ {
		s.Update(i, int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Scan()
	}
}
