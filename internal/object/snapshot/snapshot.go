// Package snapshot implements the wait-free atomic snapshot object of
// Afek, Attiya, Dolev, Gafni, Merritt and Shavit: n single-writer cells
// that can be read all-at-once atomically, built from atomic registers
// only. It rounds out the reliable-object substrate (claim C6): snapshots
// are the standard stepping stone between bare registers and higher
// objects, and — per the tutorial this substrate follows — they are
// register-implementable, unlike consensus.
//
// The construction is the classic double collect with helping. A scanner
// repeatedly collects all cells; two identical consecutive collects are a
// valid snapshot (nothing moved in between). A writer that could starve
// scanners embeds a snapshot of its own into every update; a scanner that
// sees some cell move twice borrows that embedded snapshot, which was
// taken entirely within the scanner's window. Either way Scan returns a
// linearizable cut after at most n+2 collects.
package snapshot

import (
	"fmt"
	"sync/atomic"
)

// cell is one writer's register contents: the value, the writer's update
// sequence number, and the snapshot embedded for helping.
type cell struct {
	value    int64
	seq      uint64
	embedded []int64
}

// Snapshot is an n-cell atomic snapshot object. Construct with New.
// Cell i must be updated by a single writer; Scan may run from any
// goroutine concurrently.
type Snapshot struct {
	cells []atomic.Pointer[cell]
}

// New returns a snapshot object with n zero-valued cells.
func New(n int) *Snapshot {
	if n <= 0 {
		panic("snapshot: non-positive n")
	}
	s := &Snapshot{cells: make([]atomic.Pointer[cell], n)}
	for i := range s.cells {
		s.cells[i].Store(&cell{embedded: make([]int64, n)})
	}
	return s
}

// N returns the number of cells.
func (s *Snapshot) N() int { return len(s.cells) }

// collect reads every cell once.
func (s *Snapshot) collect() []*cell {
	out := make([]*cell, len(s.cells))
	for i := range s.cells {
		out[i] = s.cells[i].Load()
	}
	return out
}

func values(cs []*cell) []int64 {
	out := make([]int64, len(cs))
	for i, c := range cs {
		out[i] = c.value
	}
	return out
}

func same(a, b []*cell) bool {
	for i := range a {
		if a[i].seq != b[i].seq {
			return false
		}
	}
	return true
}

// Scan returns an atomic view of all cells: the values coexisted at some
// instant within the call.
func (s *Snapshot) Scan() []int64 {
	moved := make([]int, len(s.cells))
	prev := s.collect()
	for {
		cur := s.collect()
		if same(prev, cur) {
			return values(cur) // clean double collect
		}
		for i := range cur {
			if cur[i].seq != prev[i].seq {
				moved[i]++
				if moved[i] >= 2 {
					// Cell i's writer performed two complete updates
					// inside our window; its second embedded snapshot
					// was taken entirely within it.
					out := make([]int64, len(cur[i].embedded))
					copy(out, cur[i].embedded)
					return out
				}
			}
		}
		prev = cur
	}
}

// Update sets cell i (single writer per cell). Each update embeds a scan
// to help concurrent scanners terminate.
func (s *Snapshot) Update(i int, v int64) {
	if i < 0 || i >= len(s.cells) {
		panic(fmt.Sprintf("snapshot: cell %d out of range [0, %d)", i, len(s.cells)))
	}
	embedded := s.Scan()
	old := s.cells[i].Load()
	s.cells[i].Store(&cell{value: v, seq: old.seq + 1, embedded: embedded})
}
