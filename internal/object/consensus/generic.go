package consensus

import (
	"fmt"
	"sync/atomic"

	"repro/internal/object/objfail"
)

// Generic counterparts of Base/Responsive, deciding values of any
// comparable type. The universal construction (internal/object/universal)
// needs consensus over command records, not bare int64s; the algorithms
// are identical.

// ObjectOf is the typed consensus API.
type ObjectOf[T comparable] interface {
	Propose(v T) (T, error)
}

// BaseOf is an unreliable one-shot consensus object over T with crash
// injection: the first proposal wins.
type BaseOf[T comparable] struct {
	objfail.Injector
	decided atomic.Pointer[T]
}

// NewBaseOf returns a healthy, undecided typed base consensus object.
func NewBaseOf[T comparable]() *BaseOf[T] { return &BaseOf[T]{} }

// Propose implements ObjectOf.
func (b *BaseOf[T]) Propose(v T) (T, error) {
	var zero T
	if err := b.Enter(); err != nil {
		return zero, err
	}
	val := v
	if b.decided.CompareAndSwap(nil, &val) {
		return v, nil
	}
	return *b.decided.Load(), nil
}

// Decided returns the decided value, if any (test inspection).
func (b *BaseOf[T]) Decided() (T, bool) {
	p := b.decided.Load()
	if p == nil {
		var zero T
		return zero, false
	}
	return *p, true
}

// ResponsiveOf is the typed t-tolerant consensus self-implementation for
// the responsive-crash model (same fixed-order traversal as Responsive).
type ResponsiveOf[T comparable] struct {
	bases []ObjectOf[T]
}

// NewResponsiveOf builds the construction over t+1 fresh typed base
// objects and returns them for crash injection. t must be >= 0.
func NewResponsiveOf[T comparable](t int) (*ResponsiveOf[T], []*BaseOf[T]) {
	if t < 0 {
		panic("consensus: negative t")
	}
	bases := make([]*BaseOf[T], t+1)
	objs := make([]ObjectOf[T], t+1)
	for i := range bases {
		bases[i] = NewBaseOf[T]()
		objs[i] = bases[i]
	}
	return &ResponsiveOf[T]{bases: objs}, bases
}

// Tolerance returns t, the number of base crashes tolerated.
func (c *ResponsiveOf[T]) Tolerance() int { return len(c.bases) - 1 }

// Propose runs the traversal; see Responsive.Propose.
func (c *ResponsiveOf[T]) Propose(v T) (T, error) {
	est := v
	ok := 0
	for _, o := range c.bases {
		if d, err := o.Propose(est); err == nil {
			est = d
			ok++
		}
	}
	if ok == 0 {
		return est, fmt.Errorf("all %d base objects crashed: %w", len(c.bases), ErrCrashed)
	}
	return est, nil
}

var _ ObjectOf[int] = (*ResponsiveOf[int])(nil)
