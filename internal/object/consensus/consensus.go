// Package consensus builds a reliable consensus object out of unreliable
// ones — the second half of the self-implementation programme (Guerraoui
// & Raynal, same proceedings) underlying the paper's "what can be
// computed" substrate.
//
// In the responsive-crash model, a t-tolerant wait-free self-
// implementation exists from t+1 base consensus objects: every process
// traverses the objects in the same fixed order, proposing its current
// estimate and adopting each answer. Once some never-crashing object o_k
// has answered everyone (at most t of t+1 can crash), every later
// proposal carries o_k's decision, so all estimates converge to it —
// Agreement; estimates are always someone's proposal — Validity; the
// traversal is a bounded loop — wait-freedom.
//
// In the non-responsive-crash model no wait-free self-implementation
// exists, no matter how many base objects are used: a process cannot
// distinguish a crashed object from a slow one, and consulting a
// different object can break Agreement. The test suite witnesses the
// blocking behaviour.
//
// This package runs on real goroutines and sync/atomic, like
// internal/object/register.
package consensus

import (
	"fmt"
	"sync/atomic"

	"repro/internal/object/objfail"
)

// ErrCrashed is returned by crashed base objects, and by the reliable
// construction when every base object crashed (tolerance exceeded); the
// accompanying value is then only the caller's own estimate and carries
// no agreement guarantee.
var ErrCrashed = objfail.ErrCrashed

// Object is the consensus API: Propose returns the decided value, which
// is the proposal of some process (possibly another one).
type Object interface {
	Propose(v int64) (int64, error)
}

// Base is an unreliable one-shot consensus object with crash injection:
// the first proposal wins. Construct with NewBase.
type Base struct {
	objfail.Injector
	decided atomic.Pointer[int64]
}

// NewBase returns a healthy, undecided base consensus object.
func NewBase() *Base { return &Base{} }

// Propose implements Object: the first value proposed to a healthy base
// object is decided and returned to every proposer.
func (b *Base) Propose(v int64) (int64, error) {
	if err := b.Enter(); err != nil {
		return 0, err
	}
	val := v
	if b.decided.CompareAndSwap(nil, &val) {
		return v, nil
	}
	return *b.decided.Load(), nil
}

// Decided returns the decided value, if any (test inspection).
func (b *Base) Decided() (int64, bool) {
	p := b.decided.Load()
	if p == nil {
		return 0, false
	}
	return *p, true
}

var _ Object = (*Base)(nil)

// Responsive is the t-tolerant wait-free consensus self-implementation
// for the responsive-crash model: t+1 base objects traversed in a fixed
// order by every process.
type Responsive struct {
	bases []Object
}

// NewResponsive builds the construction over t+1 fresh base objects and
// returns them for crash injection. t must be >= 0.
func NewResponsive(t int) (*Responsive, []*Base) {
	if t < 0 {
		panic("consensus: negative t")
	}
	bases := make([]*Base, t+1)
	objs := make([]Object, t+1)
	for i := range bases {
		bases[i] = NewBase()
		objs[i] = bases[i]
	}
	return &Responsive{bases: objs}, bases
}

// NewResponsiveFrom builds the construction over caller-supplied base
// objects (at least one). All processes must use the same object order —
// use a single Responsive value shared by all proposers.
func NewResponsiveFrom(bases []Object) *Responsive {
	if len(bases) == 0 {
		panic("consensus: no base objects")
	}
	cp := make([]Object, len(bases))
	copy(cp, bases)
	return &Responsive{bases: cp}
}

// Tolerance returns t, the number of base crashes tolerated.
func (c *Responsive) Tolerance() int { return len(c.bases) - 1 }

// Propose runs the traversal. With at most t responsive crashes it
// returns the agreed decision; if every base object crashed it returns
// the caller's estimate together with ErrCrashed.
func (c *Responsive) Propose(v int64) (int64, error) {
	est := v
	ok := 0
	for _, o := range c.bases {
		if d, err := o.Propose(est); err == nil {
			est = d
			ok++
		}
	}
	if ok == 0 {
		return est, fmt.Errorf("all %d base objects crashed: %w", len(c.bases), ErrCrashed)
	}
	return est, nil
}

var _ Object = (*Responsive)(nil)
