package consensus

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/rng"
)

func TestBaseFirstProposalWins(t *testing.T) {
	b := NewBase()
	if _, ok := b.Decided(); ok {
		t.Fatal("fresh base already decided")
	}
	d, err := b.Propose(5)
	if err != nil || d != 5 {
		t.Fatalf("first propose = %v, %v", d, err)
	}
	d, err = b.Propose(9)
	if err != nil || d != 5 {
		t.Fatalf("second propose = %v, %v, want 5", d, err)
	}
	if d, ok := b.Decided(); !ok || d != 5 {
		t.Fatalf("Decided = %v, %v", d, ok)
	}
}

func TestBaseConcurrentAgreement(t *testing.T) {
	b := NewBase()
	const procs = 16
	out := make([]int64, procs)
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			d, err := b.Propose(int64(i + 100))
			if err != nil {
				t.Errorf("propose: %v", err)
				return
			}
			out[i] = d
		}()
	}
	wg.Wait()
	for i := 1; i < procs; i++ {
		if out[i] != out[0] {
			t.Fatalf("agreement violated: %v", out)
		}
	}
	if out[0] < 100 || out[0] >= 100+procs {
		t.Fatalf("validity violated: decided %d", out[0])
	}
}

func TestBaseCrashStyles(t *testing.T) {
	b := NewBase()
	b.CrashResponsive()
	if _, err := b.Propose(1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("responsive crash: %v", err)
	}
	nb := NewBase()
	nb.CrashNonResponsive()
	done := make(chan struct{})
	go func() { nb.Propose(1); close(done) }() //nolint:errcheck
	select {
	case <-done:
		t.Fatal("propose on non-responsive base returned")
	case <-time.After(30 * time.Millisecond):
	}
	nb.Release()
	<-done
}

func TestResponsiveNoFailures(t *testing.T) {
	c, _ := NewResponsive(2)
	if c.Tolerance() != 2 {
		t.Fatalf("Tolerance = %d", c.Tolerance())
	}
	d, err := c.Propose(7)
	if err != nil || d != 7 {
		t.Fatalf("solo propose = %v, %v", d, err)
	}
	d, err = c.Propose(9)
	if err != nil || d != 7 {
		t.Fatalf("later propose = %v, %v, want 7 (agreement)", d, err)
	}
}

// The classic danger scenario: an object decides for one process, then
// crashes before answering another. The traversal must still converge.
func TestResponsiveCrashBetweenAccesses(t *testing.T) {
	c, bases := NewResponsive(1) // objects o0, o1
	// p proposes a=10: o0 decides 10 for p; o1 decides 10.
	if d, err := c.Propose(10); err != nil || d != 10 {
		t.Fatalf("p: %v, %v", d, err)
	}
	// o0 crashes before q's access.
	bases[0].CrashResponsive()
	// q proposes 20: gets error at o0 (keeps 20), then o1 answers 10.
	d, err := c.Propose(20)
	if err != nil || d != 10 {
		t.Fatalf("q decided %v, %v; agreement violated", d, err)
	}
}

func TestResponsiveConcurrentAgreementUnderCrashes(t *testing.T) {
	const tol = 3
	const procs = 12
	c, bases := NewResponsive(tol)
	// t of t+1 objects crash at staggered points mid-run.
	bases[0].CrashAfter(3, true)
	bases[1].CrashAfter(7, true)
	bases[3].CrashAfter(11, true)
	out := make([]int64, procs)
	errs := make([]error, procs)
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i], errs[i] = c.Propose(int64(1000 + i))
		}()
	}
	wg.Wait()
	for i := 0; i < procs; i++ {
		if errs[i] != nil {
			t.Fatalf("proc %d: %v", i, errs[i])
		}
		if out[i] != out[0] {
			t.Fatalf("agreement violated under crashes: %v", out)
		}
	}
	if out[0] < 1000 || out[0] >= 1000+procs {
		t.Fatalf("validity violated: %d", out[0])
	}
}

// Randomized schedules: repeat agreement checks across many staggered
// crash patterns (still <= t crashes).
func TestResponsiveAgreementRandomizedCrashes(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 30; trial++ {
		const tol = 2
		const procs = 6
		c, bases := NewResponsive(tol)
		for k := 0; k < tol; k++ {
			bases[r.Intn(tol+1)].CrashAfter(int64(1+r.Intn(10)), true)
		}
		out := make([]int64, procs)
		var wg sync.WaitGroup
		for i := 0; i < procs; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				d, err := c.Propose(int64(trial*100 + i))
				if err != nil {
					t.Errorf("trial %d proc %d: %v", trial, i, err)
					return
				}
				out[i] = d
			}()
		}
		wg.Wait()
		for i := 1; i < procs; i++ {
			if out[i] != out[0] {
				t.Fatalf("trial %d: agreement violated: %v", trial, out)
			}
		}
	}
}

func TestResponsiveAllCrashed(t *testing.T) {
	c, bases := NewResponsive(1)
	for _, b := range bases {
		b.CrashResponsive()
	}
	d, err := c.Propose(42)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("propose with all bases crashed: %v", err)
	}
	if d != 42 {
		t.Fatalf("estimate under total failure = %d, want own proposal", d)
	}
}

// The impossibility witness: under a non-responsive crash the traversal
// blocks forever — and no alternative object consultation could preserve
// agreement, which is why no wait-free construction exists in this model.
func TestResponsiveBlocksOnNonResponsiveCrash(t *testing.T) {
	c, bases := NewResponsive(1)
	bases[0].CrashNonResponsive()
	defer bases[0].Release()
	done := make(chan struct{})
	go func() { c.Propose(1); close(done) }() //nolint:errcheck
	select {
	case <-done:
		t.Fatal("traversal returned despite a non-responsive base crash")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestConstructorValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"negative t": func() { NewResponsive(-1) },
		"from empty": func() { NewResponsiveFrom(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestResponsiveFromSharedOrder(t *testing.T) {
	// Two Responsive values over the SAME base objects in the same order
	// must agree with each other (it is the object order that matters).
	b := []Object{NewBase(), NewBase(), NewBase()}
	c1 := NewResponsiveFrom(b)
	c2 := NewResponsiveFrom(b)
	d1, err1 := c1.Propose(1)
	d2, err2 := c2.Propose(2)
	if err1 != nil || err2 != nil || d1 != d2 {
		t.Fatalf("cross-instance agreement violated: %v/%v, %v/%v", d1, err1, d2, err2)
	}
}

func BenchmarkBasePropose(b *testing.B) {
	base := NewBase()
	for i := 0; i < b.N; i++ {
		_, _ = base.Propose(int64(i))
	}
}

func BenchmarkResponsivePropose(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, _ := NewResponsive(2)
		_, _ = c.Propose(int64(i))
	}
}
