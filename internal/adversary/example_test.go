package adversary_test

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/node"
	"repro/internal/otq"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Play an impossibility argument against real code: the frontier grower
// keeps the system expanding, so the knowledge-free wave never quiesces.
func Example() {
	engine := sim.New()
	proto := &otq.EchoWave{RescanInterval: 3, QuietFor: 40, MaxRescans: 100000}
	world := node.NewWorld(engine, topology.NewGrowingPath(), proto.Factory(), node.Config{Seed: 1})
	world.Join(1)
	world.Join(2)
	run := proto.Launch(world, 1)

	adv := &adversary.FrontierGrower{Every: 8}
	stop := adv.Attach(world)
	engine.RunUntil(1000)
	stop()
	world.Close()

	fmt.Println("strategy:", adv.Name())
	fmt.Println("query answered:", run.Answer() != nil)
	fmt.Println("entities grown past 100:", len(world.Trace.Entities()) > 100)
	// Output:
	// strategy: frontier-grower
	// query answered: false
	// entities grown past 100: true
}
