package adversary

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/node"
	"repro/internal/otq"
	"repro/internal/sim"
	"repro/internal/topology"
)

func joinPath(w *node.World, n int) {
	for i := 1; i <= n; i++ {
		w.Join(graph.NodeID(i))
	}
}

func TestFrontierGrowerStarvesEchoWave(t *testing.T) {
	e := sim.New()
	proto := &otq.EchoWave{RescanInterval: 3, QuietFor: 40, MaxRescans: 100000}
	w := node.NewWorld(e, topology.NewGrowingPath(), proto.Factory(), node.Config{Seed: 1})
	joinPath(w, 4)
	run := proto.Launch(w, 1)
	adv := &FrontierGrower{Every: 8}
	stop := adv.Attach(w)
	e.RunUntil(1500)
	stop()
	w.Close()
	if run.Answer() != nil {
		t.Fatalf("echo wave answered at %d against the frontier grower", run.Answer().At)
	}
	if len(w.Trace.Entities()) < 100 {
		t.Fatalf("adversary only grew the system to %d entities", len(w.Trace.Entities()))
	}
}

func TestFrontierGrowerStoppable(t *testing.T) {
	e := sim.New()
	proto := &otq.EchoWave{RescanInterval: 3, QuietFor: 40, MaxRescans: 100000}
	w := node.NewWorld(e, topology.NewGrowingPath(), proto.Factory(), node.Config{Seed: 1})
	joinPath(w, 4)
	run := proto.Launch(w, 1)
	adv := &FrontierGrower{Every: 8}
	stop := adv.Attach(w)
	e.RunUntil(300)
	stop() // adversary gives up: the run becomes eventually stable
	e.RunUntil(3000)
	w.Close()
	if run.Answer() == nil {
		t.Fatal("echo wave did not recover once the adversary stopped")
	}
	out := otq.Check(w.Trace, run, nil)
	if !out.Valid() {
		t.Fatalf("post-adversary answer invalid: %v (missed %v)", out, out.MissedStable)
	}
}

func TestRelayKillerDamagesFlood(t *testing.T) {
	// Baseline: repeated flood on a path with nobody interfering.
	runOnce := func(attach bool) otq.Outcome {
		e := sim.New()
		proto := &otq.RepeatedFlood{TTL: 8, MaxLatency: 4, MaxRounds: 4, QuietRounds: 2}
		w := node.NewWorld(e, topology.NewGrowingPath(), proto.Factory(), node.Config{
			MinLatency: 3, MaxLatency: 4, Seed: 2,
		})
		joinPath(w, 9)
		run := proto.Launch(w, 1)
		if attach {
			adv := &RelayKiller{Every: 10, Protect: []graph.NodeID{1}, MaxKills: 3}
			defer adv.Attach(w)()
		}
		e.RunUntil(2000)
		w.Close()
		return otq.Check(w.Trace, run, nil)
	}
	clean := runOnce(false)
	if !clean.Valid() {
		t.Fatalf("baseline flood invalid: %v", clean)
	}
	attacked := runOnce(true)
	if !attacked.Terminated {
		t.Fatal("flood must still terminate under the relay killer")
	}
	if attacked.CoveredStable >= clean.CoveredStable {
		t.Fatalf("relay killer did no damage: %d vs baseline %d",
			attacked.CoveredStable, clean.CoveredStable)
	}
	// The killer never touches the protected querier.
	if attacked.QuerierLeft {
		t.Fatal("protected querier was killed")
	}
}

func TestPartitionerFoolsExpandingRing(t *testing.T) {
	e := sim.New()
	proto := &otq.ExpandingRing{MaxLatency: 1, MaxTTL: 64}
	w := node.NewWorld(e, topology.NewManual(), proto.Factory(), node.Config{Seed: 3})
	for i := 1; i <= 5; i++ {
		w.Join(graph.NodeID(i))
	}
	for i := 1; i < 5; i++ {
		w.SetLink(graph.NodeID(i), graph.NodeID(i+1), true)
	}
	adv := &Partitioner{Victim: 5, CutAt: 1, HealAt: 400}
	stop := adv.Attach(w)
	// Launch after the cut so the probes run during the outage.
	var run *otq.Run
	e.At(2, func() { run = proto.Launch(w, 1) })
	e.RunUntil(3000)
	stop()
	w.Close()
	out := otq.Check(w.Trace, run, nil)
	if !out.Terminated {
		t.Fatal("expanding ring did not terminate")
	}
	if out.Valid() {
		t.Fatal("partitioner failed to fool the fixed-point test")
	}
	// But the weak validity excuses it if the answer landed during the
	// outage — the miss was unreachable.
	if out.Duration < 398 && !out.ReachableValid() {
		t.Fatalf("in-outage miss should be excused: %v", out.MissedReachableStable)
	}
}

func TestPartitionerRestoresLinks(t *testing.T) {
	e := sim.New()
	w := node.NewWorld(e, topology.NewManual(), nil, node.Config{Seed: 4})
	for i := 1; i <= 3; i++ {
		w.Join(graph.NodeID(i))
	}
	w.SetLink(1, 2, true)
	w.SetLink(2, 3, true)
	adv := &Partitioner{Victim: 2, CutAt: 10, HealAt: 50}
	adv.Attach(w)
	e.RunUntil(20)
	if w.Overlay.Graph().Degree(2) != 0 {
		t.Fatal("victim not isolated during the outage")
	}
	e.RunUntil(60)
	g := w.Overlay.Graph()
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 3) {
		t.Fatal("links not restored after the outage")
	}
}

func TestNames(t *testing.T) {
	for _, a := range []Adversary{&FrontierGrower{}, &RelayKiller{}, &Partitioner{}} {
		if a.Name() == "" {
			t.Errorf("%T has empty name", a)
		}
	}
}

func TestEdgeFlipperKeepsCycleConnected(t *testing.T) {
	e := sim.New()
	w := node.NewWorld(e, topology.NewManual(), nil, node.Config{Seed: 5})
	const n = 10
	for i := 1; i <= n; i++ {
		w.Join(graph.NodeID(i))
	}
	for i := 1; i <= n; i++ {
		w.SetLink(graph.NodeID(i), graph.NodeID(i%n+1), true)
	}
	adv := &EdgeFlipper{Every: 15, Outage: 7, Seed: 5}
	stop := adv.Attach(w)
	flapped := false
	probe := e.Every(1, func() {
		g := w.Overlay.Graph()
		if !g.Connected() {
			t.Error("cycle minus flapped edges disconnected")
		}
		if g.NumEdges() < n {
			flapped = true
		}
	})
	e.RunUntil(600)
	stop()
	probe.Stop()
	if !flapped {
		t.Fatal("flipper never cut an edge")
	}
	// All edges eventually restored (membership never changed).
	e.RunUntil(700)
	w.Close()
	if w.Overlay.Graph().NumEdges() != n {
		t.Fatalf("edges not restored: %d of %d", w.Overlay.Graph().NumEdges(), n)
	}
	// Pure link dynamics: no membership events after the joins.
	if got := w.Trace.MaxConcurrency(); got != n {
		t.Fatalf("membership changed: max concurrency %d", got)
	}
}

func TestEdgeFlipperDamagesFloodNotEcho(t *testing.T) {
	run := func(proto otq.Protocol) otq.Outcome {
		e := sim.New()
		w := node.NewWorld(e, topology.NewManual(), proto.Factory(), node.Config{
			MinLatency: 1, MaxLatency: 2, Seed: 6,
		})
		const n = 16
		for i := 1; i <= n; i++ {
			w.Join(graph.NodeID(i))
		}
		for i := 1; i <= n; i++ {
			w.SetLink(graph.NodeID(i), graph.NodeID(i%n+1), true)
		}
		adv := &EdgeFlipper{Every: 10, Outage: 8, Seed: 6}
		stop := adv.Attach(w)
		var r *otq.Run
		e.At(25, func() { r = proto.Launch(w, 1) })
		e.RunUntil(4000)
		stop()
		w.Close()
		return otq.Check(w.Trace, r, nil)
	}
	flood := run(&otq.FloodTTL{TTL: 8, MaxLatency: 2})
	echo := run(&otq.EchoWave{RescanInterval: 3, QuietFor: 60, MaxRescans: 3000})
	if flood.Valid() {
		t.Fatal("fixture too weak: flooding survived heavy link flapping")
	}
	if !echo.Terminated || !echo.Valid() {
		t.Fatalf("anti-entropy wave should absorb link flapping: %v (missed %v)",
			echo, echo.MissedStable)
	}
}
