// Package adversary makes the paper's impossibility arguments executable.
// An unsolvability claim is an adversary construction — "for every
// protocol there is a run of the class that defeats it" — and each
// strategy here builds such runs live, using only the powers its system
// class grants: scheduling arrivals, scheduling departures, or flipping
// links. Attach one to a world before launching a protocol and the
// experiment plays the lower-bound argument out against real code.
//
// The adversary is omniscient (it inspects the world and the ground-truth
// trace) but not omnipotent: it cannot touch protocol state, forge
// messages, or act outside its class's powers.
package adversary

import (
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/node"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Adversary manipulates a world while a protocol runs.
type Adversary interface {
	// Attach starts the adversary's activity on the world, until the
	// returned stop function is called or the horizon passes.
	Attach(w *node.World) (stop func())
	// Name identifies the strategy in experiment output.
	Name() string
}

// FrontierGrower realizes the C3 argument against knowledge-free waves:
// it keeps the system growing so that quiescence never comes. Fresh
// entities join every Every ticks, forever; on a growing-path overlay the
// diameter grows with them and every traversal chases a receding
// frontier. Class powers used: unbounded arrivals (M^infinity).
type FrontierGrower struct {
	// Every is the join period. Default 10.
	Every sim.Time
	// FirstID seeds fresh identities; joins use FirstID, FirstID+1, ...
	// Must not collide with existing entities. Default 1 << 20.
	FirstID graph.NodeID
}

// Name implements Adversary.
func (*FrontierGrower) Name() string { return "frontier-grower" }

// Attach implements Adversary.
func (fg *FrontierGrower) Attach(w *node.World) func() {
	every := fg.Every
	if every <= 0 {
		every = 10
	}
	next := fg.FirstID
	if next == 0 {
		next = 1 << 20
	}
	tk := w.Engine.Every(every, func() {
		w.Join(next)
		next++
	})
	return tk.Stop
}

// RelayKiller realizes the argument against unguarded waves: it watches
// who relays traffic and removes the busiest relay, mid-protocol. Without
// duplicate paths or retransmission the victim's undelivered subtree is
// silently lost. Class powers used: departures (targeted churn is still
// churn — the class does not promise WHO stays).
type RelayKiller struct {
	// Every is the kill period. Default 15.
	Every sim.Time
	// Protect lists entities the adversary may not remove (typically the
	// querier: the problem obliges nothing when the querier dies).
	Protect []graph.NodeID
	// MaxKills bounds the damage. Default 4.
	MaxKills int

	cursor int
	kills  int
}

// Name implements Adversary.
func (*RelayKiller) Name() string { return "relay-killer" }

// Attach implements Adversary.
func (rk *RelayKiller) Attach(w *node.World) func() {
	every := rk.Every
	if every <= 0 {
		every = 15
	}
	maxKills := rk.MaxKills
	if maxKills == 0 {
		maxKills = 4
	}
	protected := make(map[graph.NodeID]bool, len(rk.Protect))
	for _, id := range rk.Protect {
		protected[id] = true
	}
	tk := w.Engine.Every(every, func() {
		if rk.kills >= maxKills {
			return
		}
		// Count sends per entity since the last inspection.
		recent := w.Trace.EventsSince(rk.cursor)
		rk.cursor += len(recent)
		activity := map[graph.NodeID]int{}
		for _, ev := range recent {
			if ev.Kind == core.TSend {
				activity[ev.P]++
			}
		}
		var victim graph.NodeID
		best := 0
		ids := make([]graph.NodeID, 0, len(activity))
		for id := range activity {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			if protected[id] || w.Proc(id) == nil {
				continue
			}
			if activity[id] > best {
				victim = id
				best = activity[id]
			}
		}
		if best > 0 {
			w.Leave(victim)
			rk.kills++
		}
	})
	return tk.Stop
}

// EdgeFlipper exercises the geography dimension in isolation: membership
// never changes, but random links keep going down and coming back. On a
// cycle this never disconnects anything (a cycle minus one edge is a
// path), yet the diameter jumps between n/2 and n-1 and in-flight
// messages die with their link — dynamics that live entirely in the
// always-connected geography class. Requires an overlay with direct link
// control. Class powers used: link dynamics only.
type EdgeFlipper struct {
	// Every is the flip period. Default 20.
	Every sim.Time
	// Outage is how long a cut link stays down. Default Every/2 (min 1).
	Outage sim.Time
	// Seed drives edge choice.
	Seed uint64
}

// Name implements Adversary.
func (*EdgeFlipper) Name() string { return "edge-flipper" }

// Attach implements Adversary.
func (ef *EdgeFlipper) Attach(w *node.World) func() {
	every := ef.Every
	if every <= 0 {
		every = 20
	}
	outage := ef.Outage
	if outage <= 0 {
		outage = every / 2
		if outage <= 0 {
			outage = 1
		}
	}
	r := rng.New(ef.Seed ^ 0xf11b)
	down := make(map[[2]graph.NodeID]bool)
	tk := w.Engine.Every(every, func() {
		g := w.Overlay.Graph()
		// Collect candidate edges not currently flapped.
		var edges [][2]graph.NodeID
		for _, u := range g.Nodes() {
			for _, v := range g.Neighbors(u) {
				if u < v && !down[[2]graph.NodeID{u, v}] {
					edges = append(edges, [2]graph.NodeID{u, v})
				}
			}
		}
		if len(edges) == 0 {
			return
		}
		e := edges[r.Intn(len(edges))]
		down[e] = true
		w.SetLink(e[0], e[1], false)
		w.Engine.After(outage, func() {
			delete(down, e)
			if w.Proc(e[0]) != nil && w.Proc(e[1]) != nil {
				w.SetLink(e[0], e[1], true)
			}
		})
	})
	return tk.Stop
}

// Partitioner realizes the C2/C3 argument against fixed-point probes: it
// detaches a chosen victim for a while and reattaches it later, so any
// protocol that concluded during the outage missed a stable member.
// Requires an overlay with direct link control (topology.Manual). Class
// powers used: link dynamics within an unconstrained geography.
type Partitioner struct {
	// Victim is the entity to isolate.
	Victim graph.NodeID
	// CutAt and HealAt bound the outage (absolute virtual times).
	CutAt, HealAt sim.Time

	saved []graph.NodeID
}

// Name implements Adversary.
func (*Partitioner) Name() string { return "partitioner" }

// Attach implements Adversary.
func (pa *Partitioner) Attach(w *node.World) func() {
	cutEv := w.Engine.At(pa.CutAt, func() {
		pa.saved = w.Overlay.Graph().Neighbors(pa.Victim)
		for _, u := range pa.saved {
			w.SetLink(pa.Victim, u, false)
		}
	})
	healEv := w.Engine.At(pa.HealAt, func() {
		for _, u := range pa.saved {
			if w.Proc(u) != nil {
				w.SetLink(pa.Victim, u, true)
			}
		}
	})
	return func() {
		cutEv.Cancel()
		healEv.Cancel()
	}
}
