package dynreg_test

import (
	"fmt"

	"repro/internal/dynreg"
	"repro/internal/graph"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/topology"
)

// A register replicated inside the system: the writer updates, a joiner
// acquires state before serving reads, and the checker judges regularity.
func Example() {
	engine := sim.New()
	reg := &dynreg.Register{SpreadInterval: 3, WriteWindow: 40}
	world := node.NewWorld(engine, topology.NewRing(1), reg.Factory(), node.Config{
		MinLatency: 1, MaxLatency: 2, Seed: 1,
	})
	for i := 1; i <= 8; i++ {
		world.Join(graph.NodeID(i))
	}
	reg.Bootstrap(world, 0)

	reg.Write(world, 1, 42)
	engine.RunUntil(100)

	world.Join(99) // the joiner must acquire state first
	fmt.Println("joiner active immediately:", reg.Active(world, 99))
	engine.RunUntil(200)
	v, served := reg.Read(world, 99)
	fmt.Println("joiner reads:", v, served)

	world.Close()
	fmt.Println("run regular:", dynreg.Check(world.Trace).OK())
	// Output:
	// joiner active immediately: false
	// joiner reads: 42 true
	// run regular: true
}
