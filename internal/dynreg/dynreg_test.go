package dynreg

import (
	"strings"
	"testing"

	"repro/internal/churn"
	"repro/internal/graph"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/topology"
)

func staticWorld(reg *Register, n int) (*node.World, *sim.Engine) {
	e := sim.New()
	w := node.NewWorld(e, topology.NewRing(7), reg.Factory(), node.Config{
		MinLatency: 1, MaxLatency: 2, Seed: 7,
	})
	for i := 1; i <= n; i++ {
		w.Join(graph.NodeID(i))
	}
	reg.Bootstrap(w, 0)
	return w, e
}

func TestStaticReadYourWrite(t *testing.T) {
	reg := &Register{SpreadInterval: 3, WriteWindow: 40}
	w, e := staticWorld(reg, 10)
	reg.Write(w, 1, 42)
	if v, ok := reg.Read(w, 1); !ok || v != 42 {
		t.Fatalf("writer's own read = %v, %v", v, ok)
	}
	// After the write window, every member holds the value.
	e.RunUntil(100)
	for _, id := range w.Present() {
		if v, ok := reg.Read(w, id); !ok || v != 42 {
			t.Fatalf("member %d reads %v, %v after dissemination", id, v, ok)
		}
	}
	w.Close()
	rep := Check(w.Trace)
	if !rep.OK() {
		t.Fatalf("static run not regular: %+v", rep)
	}
	if rep.Reads != 11 {
		t.Fatalf("checker counted %d reads, want 11", rep.Reads)
	}
}

func TestInitialValueDisseminatesToJoiner(t *testing.T) {
	reg := &Register{SpreadInterval: 3}
	w, e := staticWorld(reg, 4)
	e.RunUntil(50)
	w.Join(99)
	if reg.Active(w, 99) {
		t.Fatal("joiner active before its join protocol completed")
	}
	e.RunUntil(100)
	if !reg.Active(w, 99) {
		t.Fatal("joiner never became active")
	}
	if v, ok := reg.Read(w, 99); !ok || v != 0 {
		t.Fatalf("joiner reads %v, %v; want the initial value 0", v, ok)
	}
}

func TestJoinerSeesLatestWrite(t *testing.T) {
	reg := &Register{SpreadInterval: 3, WriteWindow: 30}
	w, e := staticWorld(reg, 6)
	reg.Write(w, 1, 7)
	e.RunUntil(100)
	w.Join(50)
	e.RunUntil(200)
	if v, ok := reg.Read(w, 50); !ok || v != 7 {
		t.Fatalf("joiner reads %v, %v; want 7", v, ok)
	}
	w.Close()
	if rep := Check(w.Trace); !rep.OK() {
		t.Fatalf("run not regular: %+v", rep)
	}
}

func TestInactiveReadNotServed(t *testing.T) {
	reg := &Register{SpreadInterval: 3}
	e := sim.New()
	w := node.NewWorld(e, topology.NewManual(), reg.Factory(), node.Config{Seed: 1})
	w.Join(1) // isolated, never bootstrapped
	if _, ok := reg.Read(w, 1); ok {
		t.Fatal("inactive member served a read")
	}
	w.Close()
	rep := Check(w.Trace)
	if rep.NotServed != 1 || rep.Reads != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestSequentialWritesMonotone(t *testing.T) {
	reg := &Register{SpreadInterval: 2, WriteWindow: 25}
	w, e := staticWorld(reg, 8)
	for i := 1; i <= 5; i++ {
		reg.Write(w, 1, float64(i*100))
		e.RunUntil(e.Now() + 60)
		// Sample every member after each settled write.
		for _, id := range w.Present() {
			reg.Read(w, id)
		}
	}
	w.Close()
	rep := Check(w.Trace)
	if !rep.OK() {
		t.Fatalf("settled sequential writes not regular: %+v", rep)
	}
}

// The churn hazard: a too-short write window declares completion before
// dissemination, so members still serve the old value — stale reads.
func TestTooShortWriteWindowViolatesRegularity(t *testing.T) {
	reg := &Register{SpreadInterval: 4, WriteWindow: 1}
	w, e := staticWorld(reg, 16)
	reg.Write(w, 1, 9)
	e.RunUntil(3) // the write has "completed", dissemination has not
	stale := 0
	for _, id := range w.Present() {
		if v, ok := reg.Read(w, id); ok && v != 9 {
			stale++
		}
	}
	if stale == 0 {
		t.Fatal("fixture too lenient: dissemination beat the 1-tick window")
	}
	w.Close()
	rep := Check(w.Trace)
	if rep.OK() {
		t.Fatalf("checker missed %d stale reads: %+v", stale, rep)
	}
	if rep.Stale != stale {
		t.Fatalf("checker found %d stale, harness saw %d", rep.Stale, stale)
	}
}

func TestChurnedRunMostlyRegularAtLowChurn(t *testing.T) {
	reg := &Register{SpreadInterval: 3, WriteWindow: 60}
	e := sim.New()
	w := node.NewWorld(e, topology.NewRing(3), reg.Factory(), node.Config{
		MinLatency: 1, MaxLatency: 2, Seed: 3,
	})
	gen := churn.New(3, churn.Config{
		InitialPopulation: 12, Immortal: true,
		ArrivalRate: 0.02, Session: churn.ExpSessions(150),
	})
	w.ApplyChurn(gen, 2000)
	e.RunUntil(50)
	reg.Bootstrap(w, 0)
	val := 0.0
	writes := e.Every(150, func() {
		val++
		reg.Write(w, 1, val)
	})
	reads := e.Every(17, func() {
		present := w.Present()
		reg.Read(w, present[int(e.Now())%len(present)])
	})
	e.RunUntil(2000)
	writes.Stop()
	reads.Stop()
	w.Close()
	rep := Check(w.Trace)
	if rep.Reads < 50 {
		t.Fatalf("only %d reads sampled", rep.Reads)
	}
	if rep.Fabricated > 0 {
		t.Fatalf("fabricated reads: %+v", rep)
	}
	if rep.StaleRate() > 0.05 {
		t.Fatalf("stale rate %.3f at low churn, want ~0: %+v", rep.StaleRate(), rep)
	}
}

func TestCheckerParsesGarbageTagsSafely(t *testing.T) {
	// Marks from other protocols must not confuse the checker.
	reg := &Register{}
	w, e := staticWorld(reg, 2)
	w.Proc(1).Mark("otq.answer")
	w.Proc(1).Mark("dynreg.read:notanumber:1")
	e.RunUntil(5)
	w.Close()
	rep := Check(w.Trace)
	if rep.Reads != 0 || !rep.OK() {
		t.Fatalf("garbage marks miscounted: %+v", rep)
	}
}

func TestWritePanicsOnAbsentWriter(t *testing.T) {
	reg := &Register{}
	w, _ := staticWorld(reg, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("write at absent member did not panic")
		}
	}()
	reg.Write(w, 99, 1)
}

// TestConfigBoundaries probes each Register knob just inside and just
// outside its valid range, matching the node/config_test.go convention:
// zero fields mean the defaults and always validate.
func TestConfigBoundaries(t *testing.T) {
	cases := []struct {
		name    string
		reg     Register
		wantErr string // "" = must validate
	}{
		{"zero value", Register{}, ""},
		{"spread at floor", Register{SpreadInterval: 1}, ""},
		{"spread negative", Register{SpreadInterval: -1}, "SpreadInterval"},
		{"window at default spread", Register{WriteWindow: 4}, ""},
		{"window below default spread", Register{WriteWindow: 3}, "WriteWindow"},
		{"window at explicit spread", Register{SpreadInterval: 10, WriteWindow: 10}, ""},
		{"window below explicit spread", Register{SpreadInterval: 10, WriteWindow: 9}, "WriteWindow"},
		{"window negative", Register{WriteWindow: -1}, "WriteWindow"},
		{"max ticks at floor", Register{MaxTicks: 1}, ""},
		{"max ticks negative", Register{MaxTicks: -1}, "MaxTicks"},
	}
	for _, tc := range cases {
		err := tc.reg.Validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: validated, want error mentioning %q", tc.name, tc.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}
