// Package dynreg implements a shared register *inside* a dynamic
// distributed system — the problem the paper's authors pursued next
// (implementing registers under churn): every member keeps a local copy,
// updates spread epidemically along overlay edges, and joiners must run a
// join protocol to acquire state before serving reads.
//
// The register is single-writer regular by intent: a read must return the
// value of the last write that completed before it, or of some write
// concurrent with it. Whether the intent holds depends on the system
// class: the writer declares a write complete after a dissemination
// window sized from an assumed diameter/latency bound, and joiners adopt
// the state of whatever neighbor answers first. Under mild churn both
// assumptions hold and reads are regular; under heavy churn dissemination
// loses races with membership turnover and joiners inherit staleness —
// exactly the churn-rate threshold phenomenon of the dynamic-register
// literature. The trace-based checker (Check) counts the violations.
package dynreg

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/node"
	"repro/internal/sim"
)

// Message tags.
const (
	tagUpdate   = "dynreg.update"
	tagStateReq = "dynreg.state-req"
	tagStateRep = "dynreg.state-rep"
)

// Trace mark prefixes (parsed by Check).
const (
	markWriteStart = "dynreg.wstart"
	markWriteEnd   = "dynreg.wend"
	markRead       = "dynreg.read"
	markNotServed  = "dynreg.read-not-served"
)

type copyMsg struct {
	Seq uint64
	Val float64
}

// Register configures the replicated register and drives it from the
// harness side. A Register value drives a single world.
type Register struct {
	// SpreadInterval is the anti-entropy period of every member.
	// Default 4.
	SpreadInterval sim.Time
	// WriteWindow is how long after starting a write the writer declares
	// it complete — the protocol's stand-in for a known dissemination
	// bound. Default 40.
	WriteWindow sim.Time
	// MaxTicks bounds each member's anti-entropy activity. Default 100000.
	MaxTicks int

	writerSeq uint64
}

func (r *Register) spreadInterval() sim.Time {
	if r.SpreadInterval > 0 {
		return r.SpreadInterval
	}
	return 4
}

func (r *Register) writeWindow() sim.Time {
	if r.WriteWindow > 0 {
		return r.WriteWindow
	}
	return 40
}

func (r *Register) maxTicks() int {
	if r.MaxTicks > 0 {
		return r.MaxTicks
	}
	return 100000
}

// Validate reports the first configuration error, or nil. Zero fields
// are valid (they mean the defaults, which the error messages quote);
// negative values would silently fall back to the defaults inside the
// private getters, so they are rejected here instead — drivers
// assembling configs from user input (cmd/ddsim -dynreg) call Validate
// for a graceful message, matching every other protocol config.
func (r *Register) Validate() error {
	if r.SpreadInterval < 0 {
		return fmt.Errorf("dynreg: SpreadInterval %d must be non-negative (0 = default %d)", r.SpreadInterval, (&Register{}).spreadInterval())
	}
	if r.WriteWindow < 0 {
		return fmt.Errorf("dynreg: WriteWindow %d must be non-negative (0 = default %d)", r.WriteWindow, (&Register{}).writeWindow())
	}
	if r.WriteWindow > 0 && r.WriteWindow < r.spreadInterval() {
		return fmt.Errorf("dynreg: WriteWindow %d below the spread interval %d — no dissemination round fits the write", r.WriteWindow, r.spreadInterval())
	}
	if r.MaxTicks < 0 {
		return fmt.Errorf("dynreg: MaxTicks %d must be non-negative (0 = default %d)", r.MaxTicks, (&Register{}).maxTicks())
	}
	return nil
}

// regBehavior is one member's replica.
type regBehavior struct {
	proto  *Register
	active bool
	cur    copyMsg
	// sentSeq tracks, per neighbor, the freshest Seq already pushed.
	sentSeq map[graph.NodeID]uint64
	ticks   int
	started bool
}

// Factory returns the behaviour factory for worlds hosting the register.
// Every joining member asks its neighbors for state and serves reads only
// once some active neighbor answered (the join protocol).
func (r *Register) Factory() node.BehaviorFactory {
	return func(graph.NodeID) node.Behavior {
		return &regBehavior{proto: r, sentSeq: make(map[graph.NodeID]uint64)}
	}
}

func (b *regBehavior) Init(p *node.Proc) {
	for _, u := range p.Neighbors() {
		p.Send(u, tagStateReq, nil)
	}
	b.startTicking(p)
}

func (b *regBehavior) startTicking(p *node.Proc) {
	if b.started {
		return
	}
	b.started = true
	b.tick(p)
}

func (b *regBehavior) tick(p *node.Proc) {
	b.ticks++
	if b.ticks > b.proto.maxTicks() {
		return
	}
	if b.active {
		for _, u := range p.Neighbors() {
			// sentSeq stores cur.Seq+1 at push time, so 0 means "never
			// pushed to this neighbor" and the initial (seq 0) value is
			// pushed exactly once too.
			if b.sentSeq[u] <= b.cur.Seq {
				p.Send(u, tagUpdate, b.cur)
				b.sentSeq[u] = b.cur.Seq + 1
			}
		}
	}
	p.After(b.proto.spreadInterval(), func() { b.tick(p) })
}

func (b *regBehavior) adopt(m copyMsg) {
	if !b.active {
		b.cur = m
		b.active = true
		return
	}
	if m.Seq > b.cur.Seq {
		b.cur = m
	}
}

func (b *regBehavior) Receive(p *node.Proc, m node.Message) {
	switch m.Tag {
	case tagUpdate:
		b.adopt(m.Payload.(copyMsg))
	case tagStateReq:
		if b.active {
			p.Send(m.From, tagStateRep, b.cur)
		}
	case tagStateRep:
		b.adopt(m.Payload.(copyMsg))
	}
}

// Bootstrap activates every currently present member with the initial
// value (sequence 0). Call once, before any write, on the founding
// population; later joiners go through the join protocol instead.
func (r *Register) Bootstrap(w *node.World, initial float64) {
	for _, id := range w.Present() {
		b, ok := node.FindBehavior[*regBehavior](w.Proc(id).Behavior())
		if !ok {
			panic("dynreg: world was not built with this register's factory")
		}
		b.cur = copyMsg{Seq: 0, Val: initial}
		b.active = true
	}
}

// Write starts a write of val at the given member (the register is
// single-writer: always use the same member) and declares it complete
// after the write window. It panics if the writer is absent or inactive.
func (r *Register) Write(w *node.World, writer graph.NodeID, val float64) {
	p := w.Proc(writer)
	if p == nil {
		panic(fmt.Sprintf("dynreg: writer %d not present", writer))
	}
	b, ok := node.FindBehavior[*regBehavior](p.Behavior())
	if !ok {
		panic("dynreg: world was not built with this register's factory")
	}
	if !b.active {
		panic("dynreg: writer is not active")
	}
	r.writerSeq++
	seq := r.writerSeq
	b.cur = copyMsg{Seq: seq, Val: val}
	// Force re-push to every neighbor on the next tick.
	p.Mark(fmt.Sprintf("%s:%d:%g", markWriteStart, seq, val))
	p.After(r.writeWindow(), func() {
		p.Mark(fmt.Sprintf("%s:%d", markWriteEnd, seq))
	})
}

// Read serves a local read at the given member, recording it in the
// trace for the regularity checker. It reports whether the read was
// served (an inactive member refuses — its join has not completed).
func (r *Register) Read(w *node.World, reader graph.NodeID) (float64, bool) {
	p := w.Proc(reader)
	if p == nil {
		return 0, false
	}
	b, ok := node.FindBehavior[*regBehavior](p.Behavior())
	if !ok {
		panic("dynreg: world was not built with this register's factory")
	}
	if !b.active {
		p.Mark(markNotServed)
		return 0, false
	}
	p.Mark(fmt.Sprintf("%s:%d:%g", markRead, b.cur.Seq, b.cur.Val))
	return b.cur.Val, true
}

// Active reports whether the member's join protocol has completed.
func (r *Register) Active(w *node.World, id graph.NodeID) bool {
	p := w.Proc(id)
	if p == nil {
		return false
	}
	b, ok := node.FindBehavior[*regBehavior](p.Behavior())
	return ok && b.active
}

// Report is the regularity checker's judgment of a run.
type Report struct {
	// Reads is the number of served reads; NotServed counts refusals by
	// inactive members (not violations: the join had not completed).
	Reads, NotServed int
	// Stale counts reads that returned a write OLDER than the last
	// completed one — regularity violations.
	Stale int
	// Fabricated counts reads returning a sequence never written.
	Fabricated int
	// MaxLag is the largest (lastCompletedSeq - readSeq) observed.
	MaxLag uint64
}

// OK reports whether every served read was regular.
func (rep Report) OK() bool { return rep.Stale == 0 && rep.Fabricated == 0 }

// StaleRate returns the fraction of served reads that were stale.
func (rep Report) StaleRate() float64 {
	if rep.Reads == 0 {
		return 0
	}
	return float64(rep.Stale) / float64(rep.Reads)
}

// Check judges every recorded read against single-writer regular
// semantics using the ground-truth trace: a read must return the last
// write completed before it, or a newer (concurrent, still-running) one.
func Check(tr *core.Trace) Report {
	var rep Report
	lastCompleted := uint64(0)
	maxStarted := uint64(0)
	for _, ev := range tr.Events() {
		if ev.Kind != core.TMark {
			continue
		}
		switch {
		case strings.HasPrefix(ev.Tag, markWriteStart+":"):
			if seq, ok := parseSeq(ev.Tag, 1); ok && seq > maxStarted {
				maxStarted = seq
			}
		case strings.HasPrefix(ev.Tag, markWriteEnd+":"):
			if seq, ok := parseSeq(ev.Tag, 1); ok && seq > lastCompleted {
				lastCompleted = seq
			}
		case ev.Tag == markNotServed:
			rep.NotServed++
		case strings.HasPrefix(ev.Tag, markRead+":"):
			seq, ok := parseSeq(ev.Tag, 1)
			if !ok {
				continue
			}
			rep.Reads++
			switch {
			case seq > maxStarted:
				rep.Fabricated++
			case seq < lastCompleted:
				rep.Stale++
				if lag := lastCompleted - seq; lag > rep.MaxLag {
					rep.MaxLag = lag
				}
			}
		}
	}
	return rep
}

func parseSeq(tag string, field int) (uint64, bool) {
	parts := strings.Split(tag, ":")
	if field >= len(parts) {
		return 0, false
	}
	seq, err := strconv.ParseUint(parts[field], 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}
