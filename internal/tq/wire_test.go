package tq

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/graph"
)

func TestProbeRoundTrip(t *testing.T) {
	probes := []Probe{
		{Op: 1, Kind: KindRead, Attempt: 1, TTL: 8, Path: []graph.NodeID{3}},
		{Op: 7, Kind: KindWrite, Attempt: 3, TTL: 1, Tag: 42, Val: -1.5, Deadline: 999, Path: []graph.NodeID{1, 2, 3}},
		{Op: 1 << 60, Kind: KindWrite, Attempt: 255, TTL: 255, Tag: 1<<64 - 1, Val: math.Inf(1), Deadline: -1, Path: nil},
	}
	for _, p := range probes {
		b := EncodeProbe(p)
		got, err := DecodeProbe(b)
		if err != nil {
			t.Fatalf("decode(%+v): %v", p, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("round trip: got %+v, want %+v", got, p)
		}
		if again := EncodeProbe(got); !bytes.Equal(again, b) {
			t.Fatalf("encoding is not canonical for %+v", p)
		}
	}
}

func TestRespRoundTrip(t *testing.T) {
	resps := []Resp{
		{Op: 1, Kind: KindRead, Attempt: 1, Has: true, Replica: 9, Tag: 3, Val: 2.5, Deadline: 77, Path: []graph.NodeID{1}},
		{Op: 2, Kind: KindWrite, Attempt: 2, Has: false, Replica: -4, Path: []graph.NodeID{5, 6, 7, 8}},
	}
	for _, r := range resps {
		b := EncodeResp(r)
		got, err := DecodeResp(b)
		if err != nil {
			t.Fatalf("decode(%+v): %v", r, err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Fatalf("round trip: got %+v, want %+v", got, r)
		}
		if again := EncodeResp(got); !bytes.Equal(again, b) {
			t.Fatalf("encoding is not canonical for %+v", r)
		}
	}
}

func TestDecodeRejects(t *testing.T) {
	okProbe := EncodeProbe(Probe{Op: 1, Kind: KindRead, Path: []graph.NodeID{1, 2}})
	okResp := EncodeResp(Resp{Op: 1, Kind: KindWrite, Has: true, Path: []graph.NodeID{1}})

	cases := []struct {
		name string
		b    []byte
		resp bool
	}{
		{"probe empty", nil, false},
		{"probe truncated header", okProbe[:probeWireHeader-1], false},
		{"probe bad version", append([]byte{99}, okProbe[1:]...), false},
		{"probe bad kind", mutate(okProbe, 1, 7), false},
		{"probe short path", okProbe[:len(okProbe)-8], false},
		{"probe trailing bytes", append(append([]byte{}, okProbe...), 0), false},
		{"probe path over cap", mutate(okProbe, 36, 255), false},
		{"resp empty", nil, true},
		{"resp bad version", mutate(okResp, 0, 2), true},
		{"resp bad kind", mutate(okResp, 1, 9), true},
		{"resp non-canonical has", mutate(okResp, 3, 2), true},
		{"resp path over cap", mutate(okResp, 44, 200), true},
		{"resp length mismatch", okResp[:len(okResp)-1], true},
	}
	for _, tc := range cases {
		var err error
		if tc.resp {
			_, err = DecodeResp(tc.b)
		} else {
			_, err = DecodeProbe(tc.b)
		}
		if err == nil {
			t.Errorf("%s: decode accepted", tc.name)
		}
	}
}

func mutate(b []byte, i int, v byte) []byte {
	c := append([]byte{}, b...)
	c[i] = v
	return c
}

func TestEncodePanicsOnOversizedPath(t *testing.T) {
	long := make([]graph.NodeID, MaxWirePath+1)
	defer func() {
		if recover() == nil {
			t.Fatal("EncodeProbe accepted a path over the wire cap")
		}
	}()
	EncodeProbe(Probe{Kind: KindRead, Path: long})
}

// FuzzTQWire holds both decoders to the codec contract: never panic on
// adversarial bytes, and re-encode every accepted input byte-identically.
func FuzzTQWire(f *testing.F) {
	f.Add(EncodeProbe(Probe{Op: 3, Kind: KindWrite, Attempt: 1, TTL: 8, Tag: 5, Val: 1.5, Deadline: 100, Path: []graph.NodeID{1, 2}}))
	f.Add(EncodeResp(Resp{Op: 3, Kind: KindRead, Attempt: 2, Has: true, Replica: 7, Tag: 5, Val: 2.5, Deadline: 100, Path: []graph.NodeID{4}}))
	f.Add([]byte{probeWireVersion})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		if p, err := DecodeProbe(b); err == nil {
			if again := EncodeProbe(p); !bytes.Equal(again, b) {
				t.Fatalf("probe round trip not canonical: %x -> %x", b, again)
			}
		}
		if r, err := DecodeResp(b); err == nil {
			if again := EncodeResp(r); !bytes.Equal(again, b) {
				t.Fatalf("resp round trip not canonical: %x -> %x", b, again)
			}
		}
	})
}
