// Package tq implements a timed-quorum replicated register over the
// converged PEX overlay — the Gramoli–Raynal "Timed Quorum Systems"
// construction brought to this laboratory's dynamic worlds. Where
// internal/dynreg disseminates epidemically and collapses past a churn
// threshold, tq trades certainty for a time bound: clients assemble
// ~sqrt(N)-member quorums by bounded-TTL random walks on live pex views,
// every value carries a (tag, lease-deadline) pair, and quorum
// intersection is trusted only while the lease — sized from the measured
// churn rate — is unexpired.
//
// The register is single-writer regular by intent, like dynreg, so the
// two checkers are directly comparable. What changes is the failure
// mode: an attempt whose quorum does not assemble within one lease
// window is discarded and retried with exponential backoff under a
// per-operation retry budget, and when the budget is exhausted the
// operation fails soft — a read returns the best value any attempt saw,
// flagged stale, instead of hanging; a write reports the tag it could
// not certify. Graceful degradation (the paper's C5) lifted from
// aggregates to shared memory: violation probability grows smoothly
// with churn instead of cliff-dropping.
package tq

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/node"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Message tags.
const (
	TagProbe = "tq.probe"
	TagResp  = "tq.resp"
)

// Trace mark prefixes (parsed by Check / StreamChecker).
const (
	// MarkWriteStart is "tq.wstart:<tag>:<val>".
	MarkWriteStart = "tq.wstart"
	// MarkWriteEnd is "tq.wend:<tag>:<attempt>" — the write's quorum
	// assembled on the given attempt (1 = no retry needed).
	MarkWriteEnd = "tq.wend"
	// MarkWriteSoft is "tq.wsoft:<tag>" — retry budget exhausted; the
	// write is not certified (it may still have partially propagated).
	MarkWriteSoft = "tq.wsoft"
	// MarkReadStart is "tq.rstart:<op>".
	MarkReadStart = "tq.rstart"
	// MarkRead is "tq.read:<op>:<tag>:<val>:<flag>" with flag one of
	// FlagOK, FlagExpired, FlagSoft.
	MarkRead = "tq.read"
	// MarkReadNone is "tq.read-none:<op>" — a soft-failed read that
	// never contacted a value-holding replica.
	MarkReadNone = "tq.read-none"
	// MarkRetry is "tq.retry:<op>:<attempt>" — the given attempt's lease
	// expired before its quorum assembled.
	MarkRetry = "tq.retry"
)

// Read-result flags.
const (
	// FlagOK: quorum assembled within the lease and the returned value's
	// own lease was still live.
	FlagOK = "ok"
	// FlagExpired: quorum assembled, but the freshest value it returned
	// had outlived its lease — intersection with the write's quorum is no
	// longer probabilistically guaranteed. Served, counted, not trusted.
	FlagExpired = "expired"
	// FlagSoft: retry budget exhausted; this is the best value any
	// attempt saw, not a quorum-certified one.
	FlagSoft = "soft"
)

// Config tunes one timed-quorum register client. The zero value of every
// field means "use the default"; WithDefaults materializes them and
// Validate judges the effective values.
type Config struct {
	// QuorumCoeff scales the quorum size: q = ceil(QuorumCoeff*sqrt(N))
	// over the present population N at operation start, clamped to
	// [1, N]. Default 1.0.
	QuorumCoeff float64
	// WalkTTL is the hop budget of each quorum walk. Default 8; must
	// leave room for the initiator inside MaxWirePath.
	WalkTTL int
	// Walkers is the number of parallel walks per attempt. 0 (the
	// default) sizes it automatically: max(2, ceil(2q/WalkTTL)), so the
	// fleet's combined hop budget covers the quorum twice over.
	Walkers int
	// Lease fixes the attempt window and value lease outright. 0 (the
	// default) sizes the lease from the measured churn rate instead:
	// LeaseScale/rate, clamped to [MinLease, MaxLease], where rate is the
	// EWMA per-member turnover per tick sampled every SampleEvery ticks
	// (see Client.Attach).
	Lease sim.Time
	// MinLease / MaxLease bound the auto-sized lease. Defaults 16 / 192.
	MinLease sim.Time
	MaxLease sim.Time
	// LeaseScale is the turnover fraction the lease tolerates: the
	// auto-sized lease expires once rate*lease reaches it. Default 0.5.
	LeaseScale float64
	// SampleEvery is the churn estimator's sampling period. Default 16.
	SampleEvery sim.Time
	// RetryBudget is how many times an operation relaunches after its
	// first attempt's lease expires. Default 3.
	RetryBudget int
	// Backoff is the delay before the first retry; each further retry
	// doubles it. Default 8.
	Backoff sim.Time
	// Seed feeds the per-replica walk randomness.
	Seed uint64
}

// WithDefaults returns a copy with every zero field replaced by its
// default.
func (c Config) WithDefaults() Config {
	if c.QuorumCoeff == 0 {
		c.QuorumCoeff = 1.0
	}
	if c.WalkTTL == 0 {
		c.WalkTTL = 8
	}
	if c.MinLease == 0 {
		c.MinLease = 16
	}
	if c.MaxLease == 0 {
		c.MaxLease = 192
	}
	if c.LeaseScale == 0 {
		c.LeaseScale = 0.5
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 16
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 3
	}
	if c.Backoff == 0 {
		c.Backoff = 8
	}
	return c
}

// Validate checks the EFFECTIVE configuration (zero fields judged at
// their defaults) and quotes the offending effective value, matching the
// pex.Config convention.
func (c Config) Validate() error {
	d := c.WithDefaults()
	if d.QuorumCoeff < 0 || math.IsNaN(d.QuorumCoeff) || math.IsInf(d.QuorumCoeff, 0) {
		return fmt.Errorf("tq: QuorumCoeff %v must be a positive finite number", d.QuorumCoeff)
	}
	if d.WalkTTL < 1 || d.WalkTTL > MaxWirePath-1 {
		return fmt.Errorf("tq: WalkTTL %d must be in [1, %d] (the path must fit the wire cap)", d.WalkTTL, MaxWirePath-1)
	}
	if d.Walkers < 0 || d.Walkers > 128 {
		return fmt.Errorf("tq: Walkers %d must be in [0, 128] (0 = auto)", d.Walkers)
	}
	if d.Lease < 0 {
		return fmt.Errorf("tq: Lease %d must be non-negative (0 = auto-size from churn)", d.Lease)
	}
	if d.MinLease < 1 {
		return fmt.Errorf("tq: MinLease %d must be at least 1", d.MinLease)
	}
	if d.MaxLease < d.MinLease {
		return fmt.Errorf("tq: MaxLease %d must be at least MinLease %d", d.MaxLease, d.MinLease)
	}
	if d.LeaseScale <= 0 || math.IsNaN(d.LeaseScale) || math.IsInf(d.LeaseScale, 0) {
		return fmt.Errorf("tq: LeaseScale %v must be a positive finite number", d.LeaseScale)
	}
	if d.SampleEvery < 1 {
		return fmt.Errorf("tq: SampleEvery %d must be at least 1", d.SampleEvery)
	}
	if d.RetryBudget < 0 || d.RetryBudget > 32 {
		return fmt.Errorf("tq: RetryBudget %d must be in [0, 32]", d.RetryBudget)
	}
	if d.Backoff < 1 {
		return fmt.Errorf("tq: Backoff %d must be at least 1", d.Backoff)
	}
	return nil
}

// Counters aggregates one client's protocol activity across a run.
type Counters struct {
	// Operations launched / completed by quorum / failed soft.
	Writes, WriteQuorums, WriteSofts int
	Reads, ReadQuorums, ReadSofts    int
	// ReadExpired counts quorum-completed reads whose freshest value had
	// outlived its lease (a subset of ReadQuorums).
	ReadExpired int
	// Retries counts attempt relaunches across all operations.
	Retries int
	// Walks counts probes launched by initiators; Probes counts probe
	// deliveries at replicas; Forwards counts walk continuations;
	// Responses counts consumed (deduplicated, in-attempt) answers;
	// RespForwards counts response hops relayed along reverse paths.
	Walks, Probes, Forwards, Responses, RespForwards int
	// LateResponses counts answers that arrived after their attempt
	// expired or their operation completed; BadWire counts undecodable
	// payloads; Misrouted counts responses delivered off their path.
	LateResponses, BadWire, Misrouted int
}

// Value is one replica's copy: the writer's tag, the value, and the
// deadline until which the copy's quorum intersection is trusted.
type Value struct {
	Tag      uint64
	Val      float64
	Deadline sim.Time
}

// Client configures and drives one timed-quorum register over one world.
// Build it with NewClient, install Factory() in the world, Bootstrap the
// founding population, Attach the churn estimator, then issue Write/Read
// from the harness.
type Client struct {
	cfg      Config
	counters Counters

	writerTag uint64
	nextOp    uint64

	rateInit              bool
	rate                  float64
	lastJoins, lastLeaves int
}

// NewClient validates and defaults the configuration, panicking on
// invalid values (configuration is programmer input, like NewWorld).
func NewClient(cfg Config) *Client {
	d := cfg.WithDefaults()
	if err := d.Validate(); err != nil {
		panic(err.Error())
	}
	return &Client{cfg: d}
}

// Config returns the effective (defaulted) configuration.
func (c *Client) Config() Config { return c.cfg }

// Counters returns the activity counters accumulated so far.
func (c *Client) Counters() Counters { return c.counters }

// MeasuredRate returns the churn estimator's current EWMA per-member
// turnover rate per tick (0 before Attach or before the first sample).
func (c *Client) MeasuredRate() float64 { return c.rate }

// EffectiveLease returns the lease the next attempt would use.
func (c *Client) EffectiveLease() sim.Time {
	if c.cfg.Lease > 0 {
		return c.cfg.Lease
	}
	if c.rate <= 0 {
		return c.cfg.MaxLease
	}
	l := sim.Time(c.cfg.LeaseScale / c.rate)
	if l < c.cfg.MinLease {
		return c.cfg.MinLease
	}
	if l > c.cfg.MaxLease {
		return c.cfg.MaxLease
	}
	return l
}

// quorumSize is ceil(QuorumCoeff*sqrt(n)) clamped to [1, n].
func (c *Client) quorumSize(n int) int {
	if n < 1 {
		n = 1
	}
	q := int(math.Ceil(c.cfg.QuorumCoeff * math.Sqrt(float64(n))))
	if q < 1 {
		q = 1
	}
	if q > n {
		q = n
	}
	return q
}

// walkers is the per-attempt walk fan-out for a quorum of q.
func (c *Client) walkers(q int) int {
	if c.cfg.Walkers > 0 {
		return c.cfg.Walkers
	}
	k := (2*q + c.cfg.WalkTTL - 1) / c.cfg.WalkTTL
	if k < 2 {
		k = 2
	}
	return k
}

// Factory returns the behavior factory for worlds hosting the register.
// Replicas are purely reactive — no periodic gossip; all dissemination
// rides quorum walks — so an idle register costs nothing.
func (c *Client) Factory() node.BehaviorFactory {
	return func(id graph.NodeID) node.Behavior {
		return &replica{client: c, r: rng.New(c.cfg.Seed ^ uint64(id)*0x9e3779b97f4a7c15)}
	}
}

// Bootstrap activates every currently present member with the initial
// value (tag 0), trusted for one MaxLease from now. Call once, before
// any operation, on the founding population; later joiners acquire state
// from write probes that walk through them.
func (c *Client) Bootstrap(w *node.World, initial float64) {
	dl := w.Engine.Now() + c.cfg.MaxLease
	for _, id := range w.Present() {
		b := behaviorOf(w, id)
		b.cur = Value{Tag: 0, Val: initial, Deadline: dl}
		b.active = true
	}
}

// Attach installs the churn estimator: every SampleEvery ticks it reads
// the world's membership turnover counters and folds the per-member rate
// into an EWMA. Stop the returned ticker at horizon. Without Attach an
// auto-sized lease stays at MaxLease (rate 0) — fine for static worlds.
func (c *Client) Attach(w *node.World) *sim.Ticker {
	j, l := w.Turnover()
	c.lastJoins, c.lastLeaves = j, l
	return w.Engine.Every(c.cfg.SampleEvery, func() {
		j, l := w.Turnover()
		n := len(w.Present())
		if n < 1 {
			n = 1
		}
		obs := float64((j-c.lastJoins)+(l-c.lastLeaves)) / (float64(n) * float64(c.cfg.SampleEvery))
		c.lastJoins, c.lastLeaves = j, l
		if !c.rateInit {
			c.rate, c.rateInit = obs, true
			return
		}
		c.rate = 0.7*c.rate + 0.3*obs
	})
}

// Write starts a write of val at the given member (single-writer: always
// use the same member) and returns the tag it is writing under. The
// write completes asynchronously — MarkWriteEnd on quorum, MarkWriteSoft
// on budget exhaustion. It panics if the writer is absent.
func (c *Client) Write(w *node.World, writer graph.NodeID, val float64) uint64 {
	p := w.Proc(writer)
	if p == nil {
		panic(fmt.Sprintf("tq: writer %d not present", writer))
	}
	b := behaviorOf(w, writer)
	c.writerTag++
	c.nextOp++
	lease := c.EffectiveLease()
	op := &opState{
		op:       c.nextOp,
		kind:     KindWrite,
		tag:      c.writerTag,
		val:      val,
		deadline: p.Now() + lease,
		attempt:  1,
		q:        c.quorumSize(len(w.Present())),
	}
	b.ops[op.op] = op
	c.counters.Writes++
	p.Mark(fmt.Sprintf("%s:%d:%g", MarkWriteStart, op.tag, val))
	b.launch(p, op)
	return op.tag
}

// Read starts a read at the given member and returns the operation id
// (0 if the reader is absent). The result arrives asynchronously as a
// MarkRead / MarkReadNone trace mark and in the counters.
func (c *Client) Read(w *node.World, reader graph.NodeID) uint64 {
	p := w.Proc(reader)
	if p == nil {
		return 0
	}
	b := behaviorOf(w, reader)
	c.nextOp++
	op := &opState{
		op:      c.nextOp,
		kind:    KindRead,
		attempt: 1,
		q:       c.quorumSize(len(w.Present())),
	}
	b.ops[op.op] = op
	c.counters.Reads++
	p.Mark(fmt.Sprintf("%s:%d", MarkReadStart, op.op))
	b.launch(p, op)
	return op.op
}

// Stored returns the replica's current copy at the given member, for
// tests and the CLI (not part of the protocol).
func (c *Client) Stored(w *node.World, id graph.NodeID) (Value, bool) {
	p := w.Proc(id)
	if p == nil {
		return Value{}, false
	}
	b, ok := node.FindBehavior[*replica](p.Behavior())
	if !ok || !b.active {
		return Value{}, false
	}
	return b.cur, true
}

func behaviorOf(w *node.World, id graph.NodeID) *replica {
	b, ok := node.FindBehavior[*replica](w.Proc(id).Behavior())
	if !ok {
		panic("tq: world was not built with this client's factory")
	}
	return b
}

// opState is one in-flight operation at its initiator. It dies with the
// initiating entity: a crash mid-operation orphans the op (the checker
// counts the read unfinished; an uncertified write never marks wend).
type opState struct {
	op       uint64
	kind     byte
	tag      uint64   // write: tag being pushed
	val      float64  // write: value being pushed
	deadline sim.Time // write: the value's lease deadline (fixed at start)
	attempt  int
	expired  bool // true between lease expiry and the backoff relaunch
	q        int
	contacts map[graph.NodeID]bool
	best     Value // read: freshest value across ALL attempts
	bestHas  bool
	done     bool
}

// replica is one member's copy plus the operations it initiated. It is
// recoverable: the stored value survives crash–recovery (the op table
// deliberately does not — in-flight attempts die with the entity).
type replica struct {
	client *Client
	r      *rng.Rand
	active bool
	cur    Value
	ops    map[uint64]*opState
}

func (b *replica) Init(p *node.Proc) {
	b.ops = make(map[uint64]*opState)
}

type replicaSnap struct {
	Active bool
	Cur    Value
}

// Snapshot implements node.Recoverable: the stored value persists across
// a crash so a recovered replica rejoins with its last copy (recovery
// bridging), not as a blank joiner.
func (b *replica) Snapshot() any { return replicaSnap{Active: b.active, Cur: b.cur} }

func (b *replica) Restore(p *node.Proc, snap any) {
	b.ops = make(map[uint64]*opState)
	if s, ok := snap.(replicaSnap); ok {
		b.active, b.cur = s.Active, s.Cur
	}
}

func (b *replica) adopt(v Value) {
	if !b.active || v.Tag > b.cur.Tag {
		b.cur = v
		b.active = true
	}
}

func (b *replica) Receive(p *node.Proc, m node.Message) {
	raw, ok := m.Payload.([]byte)
	if !ok {
		b.client.counters.BadWire++
		return
	}
	switch m.Tag {
	case TagProbe:
		pr, err := DecodeProbe(raw)
		if err != nil {
			b.client.counters.BadWire++
			return
		}
		b.onProbe(p, pr)
	case TagResp:
		rp, err := DecodeResp(raw)
		if err != nil {
			b.client.counters.BadWire++
			return
		}
		b.onResp(p, rp)
	}
}

// onProbe serves one walk contact: adopt the pushed value (writes),
// answer home along the recorded path, and forward the walk to a random
// neighbor it has not visited.
func (b *replica) onProbe(p *node.Proc, pr Probe) {
	c := b.client
	c.counters.Probes++
	if len(pr.Path) == 0 {
		c.counters.BadWire++
		return
	}
	if pr.Kind == KindWrite {
		b.adopt(Value{Tag: pr.Tag, Val: pr.Val, Deadline: sim.Time(pr.Deadline)})
	}
	rp := Resp{
		Op:       pr.Op,
		Kind:     pr.Kind,
		Attempt:  pr.Attempt,
		Has:      b.active,
		Replica:  p.ID,
		Tag:      b.cur.Tag,
		Val:      b.cur.Val,
		Deadline: int64(b.cur.Deadline),
		Path:     pr.Path,
	}
	p.Send(pr.Path[len(pr.Path)-1], TagResp, EncodeResp(rp))
	if pr.TTL <= 1 || len(pr.Path) >= MaxWirePath {
		return
	}
	next, ok := b.pickNext(p, pr.Path)
	if !ok {
		return
	}
	fwd := pr
	fwd.TTL--
	fwd.Path = append(append(make([]graph.NodeID, 0, len(pr.Path)+1), pr.Path...), p.ID)
	p.Send(next, TagProbe, EncodeProbe(fwd))
	c.counters.Forwards++
}

// pickNext draws a uniform random neighbor outside the walk's path.
func (b *replica) pickNext(p *node.Proc, path []graph.NodeID) (graph.NodeID, bool) {
	var elig []graph.NodeID
	for _, u := range p.Neighbors() {
		if u == p.ID {
			continue
		}
		onPath := false
		for _, v := range path {
			if v == u {
				onPath = true
				break
			}
		}
		if !onPath {
			elig = append(elig, u)
		}
	}
	if len(elig) == 0 {
		return 0, false
	}
	return elig[b.r.Intn(len(elig))], true
}

// onResp relays a response one hop back along its path, or consumes it
// at the initiator.
func (b *replica) onResp(p *node.Proc, rp Resp) {
	c := b.client
	n := len(rp.Path)
	if n == 0 || rp.Path[n-1] != p.ID {
		c.counters.Misrouted++
		return
	}
	if n > 1 {
		fwd := rp
		fwd.Path = rp.Path[:n-1]
		p.Send(rp.Path[n-2], TagResp, EncodeResp(fwd))
		c.counters.RespForwards++
		return
	}
	op := b.ops[rp.Op]
	if op == nil || op.done || op.expired || rp.Attempt != op.attempt {
		c.counters.LateResponses++
		return
	}
	if op.contacts[rp.Replica] {
		return
	}
	switch op.kind {
	case KindWrite:
		if !rp.Has || rp.Tag < op.tag {
			// The replica answered before adopting a fresher copy — it is
			// not a certified holder of THIS write.
			return
		}
		op.contacts[rp.Replica] = true
	case KindRead:
		if !rp.Has {
			// Inactive joiners do not count toward read quorums.
			return
		}
		op.contacts[rp.Replica] = true
		if !op.bestHas || rp.Tag > op.best.Tag {
			op.best = Value{Tag: rp.Tag, Val: rp.Val, Deadline: sim.Time(rp.Deadline)}
			op.bestHas = true
		}
	}
	c.counters.Responses++
	if len(op.contacts) >= op.q {
		b.complete(p, op)
	}
}

// launch runs one attempt: self-contact, then the walk fleet, then the
// lease-expiry timer that drives retry/soft-fail.
func (b *replica) launch(p *node.Proc, op *opState) {
	c := b.client
	op.expired = false
	op.contacts = make(map[graph.NodeID]bool, op.q)
	if op.kind == KindWrite {
		b.adopt(Value{Tag: op.tag, Val: op.val, Deadline: op.deadline})
		op.contacts[p.ID] = true
	} else if b.active {
		op.contacts[p.ID] = true
		if !op.bestHas || b.cur.Tag > op.best.Tag {
			op.best, op.bestHas = b.cur, true
		}
	}
	if len(op.contacts) >= op.q {
		b.complete(p, op)
		return
	}
	// Walk fleets larger than the view share first hops round-robin:
	// paths diverge from hop 2 on, so a high-degree view is not a
	// prerequisite for assembling quorums past ~viewsize*TTL members.
	nbrs := p.Neighbors()
	if len(nbrs) > 0 {
		k := c.walkers(op.q)
		perm := b.r.Perm(len(nbrs))
		for i := 0; i < k; i++ {
			pr := Probe{
				Op:      op.op,
				Kind:    op.kind,
				Attempt: op.attempt,
				TTL:     c.cfg.WalkTTL,
				Path:    []graph.NodeID{p.ID},
			}
			if op.kind == KindWrite {
				pr.Tag, pr.Val, pr.Deadline = op.tag, op.val, int64(op.deadline)
			}
			p.Send(nbrs[perm[i%len(nbrs)]], TagProbe, EncodeProbe(pr))
			c.counters.Walks++
		}
	}
	att := op.attempt
	p.After(c.EffectiveLease(), func() { b.expire(p, op, att) })
}

// expire handles one attempt's lease running out: relaunch after
// exponential backoff while the budget lasts, then fail soft.
func (b *replica) expire(p *node.Proc, op *opState, attempt int) {
	if op.done || op.attempt != attempt || op.expired {
		return
	}
	c := b.client
	if op.attempt > c.cfg.RetryBudget {
		b.softFail(p, op)
		return
	}
	op.expired = true
	c.counters.Retries++
	p.Mark(fmt.Sprintf("%s:%d:%d", MarkRetry, op.op, op.attempt))
	backoff := c.cfg.Backoff << (op.attempt - 1)
	p.After(backoff, func() {
		if op.done {
			return
		}
		op.attempt++
		b.launch(p, op)
	})
}

func (b *replica) complete(p *node.Proc, op *opState) {
	op.done = true
	delete(b.ops, op.op)
	c := b.client
	if op.kind == KindWrite {
		c.counters.WriteQuorums++
		p.Mark(fmt.Sprintf("%s:%d:%d", MarkWriteEnd, op.tag, op.attempt))
		return
	}
	c.counters.ReadQuorums++
	flag := FlagOK
	if op.best.Deadline < p.Now() {
		flag = FlagExpired
		c.counters.ReadExpired++
	}
	p.Mark(fmt.Sprintf("%s:%d:%d:%g:%s", MarkRead, op.op, op.best.Tag, op.best.Val, flag))
}

// softFail ends an operation whose retry budget is exhausted: the
// best-known value, honestly flagged, instead of a hang.
func (b *replica) softFail(p *node.Proc, op *opState) {
	op.done = true
	delete(b.ops, op.op)
	c := b.client
	if op.kind == KindWrite {
		c.counters.WriteSofts++
		p.Mark(fmt.Sprintf("%s:%d", MarkWriteSoft, op.tag))
		return
	}
	c.counters.ReadSofts++
	if op.bestHas {
		p.Mark(fmt.Sprintf("%s:%d:%d:%g:%s", MarkRead, op.op, op.best.Tag, op.best.Val, FlagSoft))
		return
	}
	p.Mark(fmt.Sprintf("%s:%d", MarkReadNone, op.op))
}
