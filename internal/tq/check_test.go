package tq

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/topology"
)

// mark records a checker-visible mark event on a hand-built trace.
func mark(tr *core.Trace, at int64, tag string) {
	tr.Mark(at, 1, tag)
}

func TestCheckerJudgesAtReadStart(t *testing.T) {
	tr := &core.Trace{}
	mark(tr, 1, "tq.wstart:1:5")
	mark(tr, 2, "tq.wend:1:1")
	// Read starts BEFORE write 2 completes: returning write 1 is regular
	// even though write 2 certifies before the read's result mark.
	mark(tr, 3, "tq.rstart:10")
	mark(tr, 4, "tq.wstart:2:6")
	mark(tr, 5, "tq.wend:2:1")
	mark(tr, 6, "tq.read:10:1:5:ok")
	rep := Check(tr)
	if !rep.OK() || rep.Stale != 0 {
		t.Fatalf("concurrent read misjudged: %+v", rep)
	}
	if rep.Reads != 1 || rep.WriteQuorums != 2 {
		t.Fatalf("counts: %+v", rep)
	}
	if rep.MeanReadLatency() != 3 || rep.MeanWriteLatency() != 1 {
		t.Fatalf("latency: read %v write %v", rep.MeanReadLatency(), rep.MeanWriteLatency())
	}
}

func TestCheckerFlagsStaleAndFabricated(t *testing.T) {
	tr := &core.Trace{}
	mark(tr, 1, "tq.wstart:1:5")
	mark(tr, 2, "tq.wend:1:1")
	mark(tr, 3, "tq.wstart:2:6")
	mark(tr, 4, "tq.wend:2:1")
	// Stale: read starts after write 2 completed but returns write 1.
	mark(tr, 5, "tq.rstart:10")
	mark(tr, 6, "tq.read:10:1:5:soft")
	// Fabricated: a tag never written.
	mark(tr, 7, "tq.rstart:11")
	mark(tr, 8, "tq.read:11:9:0:ok")
	// Unfinished: a start with no result.
	mark(tr, 9, "tq.rstart:12")
	// No-value soft fail.
	mark(tr, 10, "tq.rstart:13")
	mark(tr, 11, "tq.read-none:13")
	mark(tr, 12, "tq.retry:14:1")
	rep := Check(tr)
	if rep.Stale != 1 || rep.Fabricated != 1 || rep.MaxLag != 1 {
		t.Fatalf("violations: %+v", rep)
	}
	if rep.Soft != 1 || rep.NoValue != 1 || rep.Unfinished != 1 || rep.Retries != 1 {
		t.Fatalf("bookkeeping: %+v", rep)
	}
	if rep.OK() {
		t.Fatal("OK() on a violating trace")
	}
	if got := rep.ViolationRate(); got != 1.0 {
		t.Fatalf("ViolationRate() = %v, want 1.0 (2 violations / 2 reads)", got)
	}
}

func TestCheckerIgnoresForeignAndMalformedMarks(t *testing.T) {
	tr := &core.Trace{}
	mark(tr, 1, "dynreg.read:4:2")
	mark(tr, 2, "tq.wstart:bogus:1")
	mark(tr, 3, "tq.read:1")
	mark(tr, 4, "pexconv")
	if rep := Check(tr); rep != (Report{}) {
		t.Fatalf("foreign marks counted: %+v", rep)
	}
}

// churnyRegisterRun runs a deterministic churning register workload and
// returns its report, judged either by the batch checker over a fully
// retained trace or by the live streaming sink over a count-only trace.
func churnyRegisterRun(seed uint64, countOnly bool) Report {
	const n, horizon = 16, 500
	c := NewClient(Config{Seed: seed, SampleEvery: 10})
	e := sim.New()
	w := node.NewWorld(e, topology.NewRing(seed), c.Factory(), node.Config{MinLatency: 1, MaxLatency: 3, Seed: seed})
	var sc *StreamChecker
	if countOnly {
		w.Trace.SetCountOnly(true)
		sc = NewStreamChecker()
		w.Trace.Stream(sc.Observe)
	}
	for i := 1; i <= n; i++ {
		w.Join(graph.NodeID(i))
	}
	c.Bootstrap(w, 0)
	est := c.Attach(w)
	defer est.Stop()

	next := graph.NodeID(n + 1)
	gone := graph.NodeID(2) // spare the writer at 1
	churner := e.Every(12, func() {
		w.Join(next)
		next++
		if gone != 1 {
			w.Leave(gone)
		}
		gone++
	})
	defer churner.Stop()

	val := 0.0
	writer := e.Every(40, func() {
		val++
		c.Write(w, 1, val)
	})
	defer writer.Stop()
	readTurn := 0
	reader := e.Every(7, func() {
		present := w.Present()
		c.Read(w, present[readTurn%len(present)])
		readTurn++
	})
	defer reader.Stop()

	e.RunUntil(horizon)
	w.Close()
	if countOnly {
		if len(w.Trace.Events()) != 0 {
			panic("count-only trace retained events")
		}
		return sc.Finish()
	}
	return Check(w.Trace)
}

// TestStreamMatchesBatch is the scaling differential: the live streaming
// sink over a count-only trace must reach the very same verdict the
// batch checker reads from a fully retained trace of the identical
// seeded run.
func TestStreamMatchesBatch(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		batch := churnyRegisterRun(seed, false)
		stream := churnyRegisterRun(seed, true)
		if batch != stream {
			t.Fatalf("seed %d: stream verdict diverged\nbatch:  %+v\nstream: %+v", seed, batch, stream)
		}
		if batch.Reads == 0 || batch.WriteQuorums == 0 {
			t.Fatalf("seed %d: degenerate run: %+v", seed, batch)
		}
	}
}

// TestLiveSinkMatchesPostHocScan: attach the sink to a fully-retained
// trace AND scan the same trace afterwards — one run, two judgment
// paths, same report.
func TestLiveSinkMatchesPostHocScan(t *testing.T) {
	const seed = 42
	c := NewClient(Config{Seed: seed})
	e := sim.New()
	w := node.NewWorld(e, topology.NewRing(seed), c.Factory(), node.Config{MinLatency: 1, MaxLatency: 2, Seed: seed})
	sc := NewStreamChecker()
	w.Trace.Stream(sc.Observe)
	for i := 1; i <= 12; i++ {
		w.Join(graph.NodeID(i))
	}
	c.Bootstrap(w, 0)
	for k := 0; k < 4; k++ {
		v := float64(k)
		e.At(sim.Time(30+60*k), func() { c.Write(w, 1, v) })
	}
	for k := 0; k < 20; k++ {
		id := graph.NodeID(1 + k%12)
		e.At(sim.Time(35+11*k), func() { c.Read(w, id) })
	}
	e.RunUntil(400)
	w.Close()
	live, scan := sc.Finish(), Check(w.Trace)
	if live != scan {
		t.Fatalf("live sink and post-hoc scan diverged\nlive: %+v\nscan: %+v", live, scan)
	}
}

func TestReportRates(t *testing.T) {
	rep := Report{Reads: 8, Stale: 1, Fabricated: 1, Soft: 2, NoValue: 2}
	if got := rep.ViolationRate(); got != 0.25 {
		t.Fatalf("ViolationRate = %v", got)
	}
	if got := rep.SoftRate(); got != 0.4 {
		t.Fatalf("SoftRate = %v", got)
	}
	if (Report{}).ViolationRate() != 0 || (Report{}).SoftRate() != 0 {
		t.Fatal("zero-read rates must be 0")
	}
}

func BenchmarkTQWire(b *testing.B) {
	pr := Probe{Op: 12, Kind: KindWrite, Attempt: 2, TTL: 6, Tag: 9, Val: 3.25, Deadline: 480,
		Path: []graph.NodeID{1, 2, 3, 4, 5}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc := EncodeProbe(pr)
		if _, err := DecodeProbe(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTQCheckStream(b *testing.B) {
	// Pre-render a mark workload once; the benchmark measures the sink.
	events := make([]core.TraceEvent, 0, 4096)
	tag := uint64(0)
	for i := 0; i < 512; i++ {
		tag++
		events = append(events,
			core.TraceEvent{At: core.Time(4 * i), Kind: core.TMark, Tag: fmt.Sprintf("tq.wstart:%d:1", tag)},
			core.TraceEvent{At: core.Time(4*i + 1), Kind: core.TMark, Tag: fmt.Sprintf("tq.rstart:%d", tag)},
			core.TraceEvent{At: core.Time(4*i + 2), Kind: core.TMark, Tag: fmt.Sprintf("tq.wend:%d:1", tag)},
			core.TraceEvent{At: core.Time(4*i + 3), Kind: core.TMark, Tag: fmt.Sprintf("tq.read:%d:%d:1:ok", tag, tag)},
		)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := NewStreamChecker()
		for _, ev := range events {
			sc.Observe(ev)
		}
		if rep := sc.Finish(); !rep.OK() {
			b.Fatal("violations in synthetic workload")
		}
	}
}
