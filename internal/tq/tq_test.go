package tq

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dynreg"
	"repro/internal/graph"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/topology"
)

// meshWorld builds a fully-connected static world with n bootstrapped
// members.
func meshWorld(c *Client, n int, ncfg node.Config) (*node.World, *sim.Engine) {
	e := sim.New()
	w := node.NewWorld(e, topology.NewMesh(), c.Factory(), ncfg)
	for i := 1; i <= n; i++ {
		w.Join(graph.NodeID(i))
	}
	c.Bootstrap(w, 0)
	return w, e
}

func countMarks(tr *core.Trace, prefix string) int {
	n := 0
	for _, ev := range tr.Events() {
		if ev.Kind == core.TMark && (ev.Tag == prefix || strings.HasPrefix(ev.Tag, prefix+":")) {
			n++
		}
	}
	return n
}

func TestStaticQuorumWriteRead(t *testing.T) {
	c := NewClient(Config{Seed: 1})
	w, e := meshWorld(c, 16, node.Config{MinLatency: 1, MaxLatency: 2, Seed: 1})
	tag := c.Write(w, 1, 42)
	if tag != 1 {
		t.Fatalf("first write got tag %d", tag)
	}
	e.RunUntil(100)
	if got := c.Counters().WriteQuorums; got != 1 {
		t.Fatalf("write did not certify: counters %+v", c.Counters())
	}
	op := c.Read(w, 9)
	if op == 0 {
		t.Fatal("read did not launch")
	}
	e.RunUntil(200)
	w.Close()
	cc := c.Counters()
	if cc.ReadQuorums != 1 || cc.ReadSofts != 0 || cc.Retries != 0 {
		t.Fatalf("read did not certify cleanly: %+v", cc)
	}
	rep := Check(w.Trace)
	if !rep.OK() || rep.Reads != 1 || rep.WriteQuorums != 1 {
		t.Fatalf("checker: %+v", rep)
	}
	if countMarks(w.Trace, MarkRead) != 1 {
		t.Fatal("missing read mark")
	}
	// The read must have returned the written value, flagged ok.
	for _, ev := range w.Trace.Events() {
		if ev.Kind == core.TMark && strings.HasPrefix(ev.Tag, MarkRead+":") {
			if !strings.HasSuffix(ev.Tag, ":1:42:"+FlagOK) {
				t.Fatalf("read mark %q, want tag 1 val 42 flag ok", ev.Tag)
			}
		}
	}
}

// A joiner that has not acquired state still gets its reads served by a
// quorum of value-holding replicas — where dynreg refuses the read until
// the join protocol completes.
func TestInactiveJoinerReadIsServed(t *testing.T) {
	c := NewClient(Config{Seed: 2})
	w, e := meshWorld(c, 9, node.Config{MinLatency: 1, MaxLatency: 2, Seed: 2})
	c.Write(w, 1, 7)
	e.RunUntil(100)
	w.Join(99)
	if _, has := c.Stored(w, 99); has {
		t.Fatal("fresh joiner unexpectedly holds a value")
	}
	c.Read(w, 99)
	e.RunUntil(200)
	w.Close()
	if c.Counters().ReadQuorums != 1 {
		t.Fatalf("joiner read not served: %+v", c.Counters())
	}
	if rep := Check(w.Trace); !rep.OK() || rep.Reads != 1 {
		t.Fatalf("checker: %+v", rep)
	}
}

// Edge case: the lease expires mid-assembly. Channel latency exceeds the
// attempt window, so every attempt's responses come home after its lease
// ran out — they must be discarded (not counted toward a later attempt's
// quorum) and the operation must fail soft once the budget is spent.
func TestLeaseExpiresMidAssembly(t *testing.T) {
	c := NewClient(Config{Seed: 3, Lease: 16, RetryBudget: 2, Backoff: 4})
	w, e := meshWorld(c, 16, node.Config{MinLatency: 30, MaxLatency: 40, Seed: 3})
	c.Write(w, 1, 5)
	e.RunUntil(600)
	w.Close()
	cc := c.Counters()
	if cc.WriteSofts != 1 || cc.WriteQuorums != 0 {
		t.Fatalf("write should have soft-failed: %+v", cc)
	}
	if cc.Retries != 2 {
		t.Fatalf("want exactly RetryBudget=2 retries, got %d", cc.Retries)
	}
	if cc.LateResponses == 0 {
		t.Fatal("expired attempts' responses were never seen arriving late")
	}
	rep := Check(w.Trace)
	if rep.WriteSofts != 1 || rep.Retries != 2 || rep.WriteQuorums != 0 {
		t.Fatalf("checker: %+v", rep)
	}
	if countMarks(w.Trace, MarkRetry) != 2 || countMarks(w.Trace, MarkWriteSoft) != 1 {
		t.Fatal("retry/soft marks missing from trace")
	}
}

// Edge case: retry budget exhaustion on an isolated initiator — no
// neighbors, so no quorum can ever assemble. The operation must retry on
// the deterministic backoff schedule and then fail soft with the
// best-known (local) value instead of hanging.
func TestRetryBudgetExhaustionSoftFail(t *testing.T) {
	c := NewClient(Config{Seed: 4, Lease: 20, RetryBudget: 3, Backoff: 8})
	e := sim.New()
	// A manual overlay with no links: members are present but isolated.
	w := node.NewWorld(e, topology.NewManual(), c.Factory(), node.Config{Seed: 4})
	for i := 1; i <= 9; i++ {
		w.Join(graph.NodeID(i))
	}
	c.Bootstrap(w, 17)
	c.Write(w, 1, 5)
	c.Read(w, 2)
	// Budget 3, lease 20, backoff 8/16/32: the last attempt expires at
	// 4*20 + (8+16+32) = 136 ticks after launch.
	e.RunUntil(200)
	w.Close()
	cc := c.Counters()
	if cc.WriteSofts != 1 || cc.ReadSofts != 1 {
		t.Fatalf("operations did not soft-fail: %+v", cc)
	}
	if cc.Retries != 6 {
		t.Fatalf("want 3 retries per op, got %d total", cc.Retries)
	}
	// The soft read returns the reader's own bootstrap copy, flagged.
	found := false
	for _, ev := range w.Trace.Events() {
		if ev.Kind == core.TMark && strings.HasPrefix(ev.Tag, MarkRead+":") {
			found = true
			if !strings.HasSuffix(ev.Tag, ":0:17:"+FlagSoft) {
				t.Fatalf("soft read mark %q, want tag 0 val 17 flag soft", ev.Tag)
			}
		}
	}
	if !found {
		t.Fatal("soft read produced no result mark")
	}
	rep := Check(w.Trace)
	if rep.WriteSofts != 1 || rep.Soft != 1 || rep.Reads != 1 || !rep.OK() {
		t.Fatalf("checker: %+v", rep)
	}
}

// Edge case: the writer crashes mid-write (after wstart, before its
// quorum assembles). The op dies with the entity — wend is never marked
// — but the replica's stored value survives through the stable store, so
// the recovered writer bridges the gap and the next write proceeds from
// the client's surviving tag counter.
func TestCrashMidWriteRecoveryBridging(t *testing.T) {
	c := NewClient(Config{Seed: 5})
	w, e := meshWorld(c, 9, node.Config{MinLatency: 2, MaxLatency: 3, Seed: 5})
	e.RunUntil(10)
	c.Write(w, 1, 11)
	// Crash before any response can land (latency floor is 2 ticks).
	w.Crash(1)
	e.RunUntil(50)
	w.Recover(1)
	if v, ok := c.Stored(w, 1); !ok || v.Tag != 1 || v.Val != 11 {
		t.Fatalf("recovered replica lost its copy: %+v ok=%v", v, ok)
	}
	// The interrupted write is not certified...
	if c.Counters().WriteQuorums != 0 {
		t.Fatalf("crashed write certified: %+v", c.Counters())
	}
	// ...and the next write bridges: fresh tag, full quorum.
	if tag := c.Write(w, 1, 12); tag != 2 {
		t.Fatalf("post-recovery write got tag %d, want 2", tag)
	}
	c.Read(w, 5)
	e.RunUntil(200)
	w.Close()
	cc := c.Counters()
	if cc.WriteQuorums != 1 || cc.ReadQuorums != 1 {
		t.Fatalf("post-recovery ops did not certify: %+v", cc)
	}
	rep := Check(w.Trace)
	if !rep.OK() || rep.UnfinishedWrites != 1 || rep.WriteQuorums != 1 {
		t.Fatalf("checker: %+v", rep)
	}
}

// The churn estimator sizes the lease from measured turnover: a static
// world keeps the lease at MaxLease, a churning one pulls it down.
func TestChurnSizedLease(t *testing.T) {
	c := NewClient(Config{Seed: 6, SampleEvery: 10})
	e := sim.New()
	w := node.NewWorld(e, topology.NewRing(6), c.Factory(), node.Config{Seed: 6})
	for i := 1; i <= 20; i++ {
		w.Join(graph.NodeID(i))
	}
	c.Bootstrap(w, 0)
	tick := c.Attach(w)
	defer tick.Stop()
	if c.EffectiveLease() != c.Config().MaxLease {
		t.Fatalf("pre-churn lease %d, want MaxLease", c.EffectiveLease())
	}
	// One join + one leave every 5 ticks: per-member turnover
	// 2/(20*5) = 0.02, so the auto lease is 0.5/0.02 = 25.
	next := graph.NodeID(21)
	gone := graph.NodeID(1)
	churner := e.Every(5, func() {
		w.Join(next)
		next++
		w.Leave(gone)
		gone++
	})
	defer churner.Stop()
	e.RunUntil(300)
	if c.MeasuredRate() <= 0 {
		t.Fatal("estimator measured no churn")
	}
	lease := c.EffectiveLease()
	if lease < c.Config().MinLease || lease >= c.Config().MaxLease {
		t.Fatalf("churn-sized lease %d outside (MinLease, MaxLease)", lease)
	}
	if lease < 20 || lease > 32 {
		t.Fatalf("lease %d far from the 25 the turnover implies", lease)
	}
}

// Seeded differential against dynreg on churn-free worlds: same ring,
// same op schedule — both register families must be perfectly regular
// and serve every read.
func TestDifferentialVsDynregChurnFree(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		const n, horizon = 12, 400

		// tq world.
		c := NewClient(Config{Seed: seed})
		e1 := sim.New()
		w1 := node.NewWorld(e1, topology.NewRing(seed), c.Factory(), node.Config{MinLatency: 1, MaxLatency: 2, Seed: seed})
		for i := 1; i <= n; i++ {
			w1.Join(graph.NodeID(i))
		}
		c.Bootstrap(w1, 0)
		// dynreg world, same shape.
		reg := &dynreg.Register{SpreadInterval: 3, WriteWindow: 40}
		e2 := sim.New()
		w2 := node.NewWorld(e2, topology.NewRing(seed), reg.Factory(), node.Config{MinLatency: 1, MaxLatency: 2, Seed: seed})
		for i := 1; i <= n; i++ {
			w2.Join(graph.NodeID(i))
		}
		reg.Bootstrap(w2, 0)

		for k := 0; k < 3; k++ {
			at := sim.Time(50 + 100*k)
			val := float64(k + 1)
			e1.At(at, func() { c.Write(w1, 1, val) })
			e2.At(at, func() { reg.Write(w2, 1, val) })
		}
		for k := 0; k < 15; k++ {
			at := sim.Time(60 + 20*k)
			id := graph.NodeID(1 + k%n)
			e1.At(at, func() { c.Read(w1, id) })
			e2.At(at, func() { reg.Read(w2, id) })
		}
		e1.RunUntil(horizon)
		e2.RunUntil(horizon)
		w1.Close()
		w2.Close()

		tqRep := Check(w1.Trace)
		drRep := dynreg.Check(w2.Trace)
		if !tqRep.OK() || !drRep.OK() {
			t.Fatalf("seed %d: violations on a churn-free world: tq %+v dynreg %+v", seed, tqRep, drRep)
		}
		if tqRep.Reads != 15 || tqRep.Unfinished != 0 || tqRep.Soft != 0 {
			t.Fatalf("seed %d: tq did not serve all 15 reads cleanly: %+v", seed, tqRep)
		}
		if drRep.Reads != 15 || drRep.NotServed != 0 {
			t.Fatalf("seed %d: dynreg did not serve all 15 reads: %+v", seed, drRep)
		}
		if tqRep.WriteQuorums != 3 {
			t.Fatalf("seed %d: tq certified %d of 3 writes", seed, tqRep.WriteQuorums)
		}
	}
}
