package tq

import (
	"strconv"
	"strings"

	"repro/internal/core"
)

// Report is the regularity checker's judgment of a run. The register is
// single-writer regular by intent: a completed read must return the last
// write that completed (reached its quorum) before the read started, or
// a concurrent/newer one. Soft and expired reads are judged by the same
// rule — tq's claim is that it DEGRADES by flagging honestly, not that
// flagged values get a pass.
type Report struct {
	// Writes started / quorum-certified / soft-failed / still open at
	// the horizon.
	Writes, WriteQuorums, WriteSofts, UnfinishedWrites int
	// Reads that returned a value (ok + expired + soft); Soft and
	// Expired break out the flagged subsets. NoValue counts soft-failed
	// reads that never saw any value (served as "no value", excluded
	// from Reads); Unfinished counts reads still open at the horizon
	// (initiator died or horizon cut the op).
	Reads, Soft, Expired, NoValue, Unfinished int
	// Stale counts reads that returned a write OLDER than the last
	// quorum-certified one — regularity violations. Fabricated counts
	// reads returning a tag never written.
	Stale, Fabricated int
	// MaxLag is the largest (lastCompletedTag - readTag) observed.
	MaxLag uint64
	// Retries counts attempt relaunches recorded in the trace.
	Retries int

	readLatSum, writeLatSum int64
	readLatN, writeLatN     int
}

// OK reports whether every value-returning read was regular.
func (rep Report) OK() bool { return rep.Stale == 0 && rep.Fabricated == 0 }

// ViolationRate returns the fraction of value-returning reads that
// violated regularity.
func (rep Report) ViolationRate() float64 {
	if rep.Reads == 0 {
		return 0
	}
	return float64(rep.Stale+rep.Fabricated) / float64(rep.Reads)
}

// SoftRate returns the fraction of completed reads (including no-value
// soft fails) that exhausted their retry budget.
func (rep Report) SoftRate() float64 {
	n := rep.Reads + rep.NoValue
	if n == 0 {
		return 0
	}
	return float64(rep.Soft+rep.NoValue) / float64(n)
}

// MeanReadLatency returns the mean ticks from read start to its result
// mark (value-returning reads only).
func (rep Report) MeanReadLatency() float64 {
	if rep.readLatN == 0 {
		return 0
	}
	return float64(rep.readLatSum) / float64(rep.readLatN)
}

// MeanWriteLatency returns the mean ticks from write start to quorum
// certification (certified writes only).
func (rep Report) MeanWriteLatency() float64 {
	if rep.writeLatN == 0 {
		return 0
	}
	return float64(rep.writeLatSum) / float64(rep.writeLatN)
}

// StreamChecker is the incremental regularity checker: a core.Trace
// sink that judges tq marks at Record time, holding only open
// operations. Composed with count-only retention it judges worlds whose
// traces store zero events — same contract as otq.StreamChecker, so
// judged register runs scale to n>=1k lite worlds.
//
// Usage: sc := NewStreamChecker(); tr.Stream(sc.Observe); run;
// rep := sc.Finish().
type StreamChecker struct {
	rep           Report
	lastCompleted uint64
	maxStarted    uint64
	// openReads maps op -> (lastCompleted snapshot at rstart, start
	// time): regularity is judged against the state at read START.
	openReads map[uint64]openRead
	// openWrites maps tag -> wstart time for latency accounting.
	openWrites map[uint64]core.Time
}

type openRead struct {
	snap uint64
	at   core.Time
}

// NewStreamChecker returns a checker with no observations.
func NewStreamChecker() *StreamChecker {
	return &StreamChecker{
		openReads:  make(map[uint64]openRead),
		openWrites: make(map[uint64]core.Time),
	}
}

// Observe feeds one trace event. Non-mark events and foreign marks are
// ignored, so the sink composes with any other trace traffic.
func (sc *StreamChecker) Observe(ev core.TraceEvent) {
	if ev.Kind != core.TMark || !strings.HasPrefix(ev.Tag, "tq.") {
		return
	}
	parts := strings.Split(ev.Tag, ":")
	switch parts[0] {
	case MarkWriteStart:
		tag, ok := fieldUint(parts, 1)
		if !ok {
			return
		}
		sc.rep.Writes++
		if tag > sc.maxStarted {
			sc.maxStarted = tag
		}
		sc.openWrites[tag] = ev.At
	case MarkWriteEnd:
		tag, ok := fieldUint(parts, 1)
		if !ok {
			return
		}
		sc.rep.WriteQuorums++
		if tag > sc.lastCompleted {
			sc.lastCompleted = tag
		}
		if st, open := sc.openWrites[tag]; open {
			sc.rep.writeLatSum += int64(ev.At - st)
			sc.rep.writeLatN++
			delete(sc.openWrites, tag)
		}
	case MarkWriteSoft:
		tag, ok := fieldUint(parts, 1)
		if !ok {
			return
		}
		sc.rep.WriteSofts++
		delete(sc.openWrites, tag)
	case MarkReadStart:
		op, ok := fieldUint(parts, 1)
		if !ok {
			return
		}
		sc.openReads[op] = openRead{snap: sc.lastCompleted, at: ev.At}
	case MarkRead:
		op, ok1 := fieldUint(parts, 1)
		tag, ok2 := fieldUint(parts, 2)
		if !ok1 || !ok2 || len(parts) < 5 {
			return
		}
		or, open := sc.openReads[op]
		if !open {
			// A result without a recorded start: judge against the
			// current state (never produced by the protocol itself).
			or = openRead{snap: sc.lastCompleted, at: ev.At}
		}
		delete(sc.openReads, op)
		sc.rep.Reads++
		switch parts[4] {
		case FlagExpired:
			sc.rep.Expired++
		case FlagSoft:
			sc.rep.Soft++
		}
		switch {
		case tag > sc.maxStarted:
			sc.rep.Fabricated++
		case tag < or.snap:
			sc.rep.Stale++
			if lag := or.snap - tag; lag > sc.rep.MaxLag {
				sc.rep.MaxLag = lag
			}
		}
		sc.rep.readLatSum += int64(ev.At - or.at)
		sc.rep.readLatN++
	case MarkReadNone:
		op, ok := fieldUint(parts, 1)
		if !ok {
			return
		}
		delete(sc.openReads, op)
		sc.rep.NoValue++
	case MarkRetry:
		sc.rep.Retries++
	}
}

// Finish folds the still-open operations into the report and returns it.
func (sc *StreamChecker) Finish() Report {
	rep := sc.rep
	rep.Unfinished = len(sc.openReads)
	rep.UnfinishedWrites = len(sc.openWrites)
	return rep
}

// Check judges a fully-retained trace: it replays every event through a
// fresh StreamChecker, so batch and streaming verdicts are identical by
// construction (and differentially tested live-sink vs post-hoc).
func Check(tr *core.Trace) Report {
	sc := NewStreamChecker()
	for _, ev := range tr.Events() {
		sc.Observe(ev)
	}
	return sc.Finish()
}

func fieldUint(parts []string, i int) (uint64, bool) {
	if i >= len(parts) {
		return 0, false
	}
	v, err := strconv.ParseUint(parts[i], 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
