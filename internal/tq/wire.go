package tq

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/graph"
)

// Probe/response kinds. A probe's kind decides what the contact does at
// each replica it visits: a write probe pushes (tag, val, deadline) and
// the replica adopts-if-newer; a read probe only snapshots the replica's
// current value.
const (
	KindRead  = byte(0)
	KindWrite = byte(1)
)

// Wire-format limits. Honest walk paths hold at most WalkTTL+1 entries,
// far under MaxWirePath; the codec rejects anything past it so an
// adversarial payload cannot make receivers allocate unboundedly.
const (
	MaxWirePath = 64

	probeWireVersion = 1
	respWireVersion  = 1

	// version + kind + attempt + ttl + op + tag + val + deadline + pathlen
	probeWireHeader = 4 + 8 + 8 + 8 + 8 + 1
	// version + kind + attempt + has + op + replica + tag + val + deadline + pathlen
	respWireHeader = 4 + 8 + 8 + 8 + 8 + 8 + 1
)

// Probe is one hop of a quorum walk: operation identity (Op, Kind,
// Attempt), remaining budget (TTL), the value being pushed for writes
// (Tag, Val, Deadline — zero for reads), and the path walked so far.
// Path[0] is the initiator; responses unwind along it hop by hop, so a
// probe is routable home even though intermediate links are only known
// pairwise.
type Probe struct {
	Op       uint64
	Kind     byte
	Attempt  int
	TTL      int
	Tag      uint64
	Val      float64
	Deadline int64
	Path     []graph.NodeID
}

// Resp is one replica's answer to a probe, travelling the recorded path
// in reverse. Has reports whether the replica held a value at contact
// time (inactive joiners answer Has=false and do not count toward read
// quorums); Replica identifies the answering member for initiator-side
// deduplication across overlapping walks.
type Resp struct {
	Op       uint64
	Kind     byte
	Attempt  int
	Has      bool
	Replica  graph.NodeID
	Tag      uint64
	Val      float64
	Deadline int64
	Path     []graph.NodeID
}

func clampByte(v int) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

// EncodeProbe renders a probe in its canonical wire form: fixed-width
// little-endian fields, then the path as uint64 entries. It panics on
// paths over MaxWirePath — honest walks are TTL-bounded far below it.
func EncodeProbe(p Probe) []byte {
	if len(p.Path) > MaxWirePath {
		panic(fmt.Sprintf("tq: encoding a %d-hop path exceeds the wire cap %d", len(p.Path), MaxWirePath))
	}
	b := make([]byte, probeWireHeader+8*len(p.Path))
	b[0] = probeWireVersion
	b[1] = p.Kind
	b[2] = clampByte(p.Attempt)
	b[3] = clampByte(p.TTL)
	binary.LittleEndian.PutUint64(b[4:], p.Op)
	binary.LittleEndian.PutUint64(b[12:], p.Tag)
	binary.LittleEndian.PutUint64(b[20:], math.Float64bits(p.Val))
	binary.LittleEndian.PutUint64(b[28:], uint64(p.Deadline))
	b[36] = byte(len(p.Path))
	off := probeWireHeader
	for _, id := range p.Path {
		binary.LittleEndian.PutUint64(b[off:], uint64(id))
		off += 8
	}
	return b
}

// DecodeProbe parses a wire probe, rejecting version/kind/length
// mismatches. It never panics on adversarial input (FuzzTQWire holds it
// to that), and EncodeProbe(DecodeProbe(b)) == b for every accepted b.
func DecodeProbe(b []byte) (Probe, error) {
	if len(b) < probeWireHeader {
		return Probe{}, fmt.Errorf("tq: probe truncated at %d bytes", len(b))
	}
	if b[0] != probeWireVersion {
		return Probe{}, fmt.Errorf("tq: unknown probe wire version %d", b[0])
	}
	if b[1] != KindRead && b[1] != KindWrite {
		return Probe{}, fmt.Errorf("tq: unknown probe kind %d", b[1])
	}
	n := int(b[36])
	if n > MaxWirePath {
		return Probe{}, fmt.Errorf("tq: probe path of %d exceeds the wire cap %d", n, MaxWirePath)
	}
	if len(b) != probeWireHeader+8*n {
		return Probe{}, fmt.Errorf("tq: probe with %d path entries is %d bytes, want %d", n, len(b), probeWireHeader+8*n)
	}
	p := Probe{
		Op:       binary.LittleEndian.Uint64(b[4:]),
		Kind:     b[1],
		Attempt:  int(b[2]),
		TTL:      int(b[3]),
		Tag:      binary.LittleEndian.Uint64(b[12:]),
		Val:      math.Float64frombits(binary.LittleEndian.Uint64(b[20:])),
		Deadline: int64(binary.LittleEndian.Uint64(b[28:])),
	}
	if n > 0 {
		p.Path = make([]graph.NodeID, n)
		off := probeWireHeader
		for i := range p.Path {
			p.Path[i] = graph.NodeID(binary.LittleEndian.Uint64(b[off:]))
			off += 8
		}
	}
	return p, nil
}

// EncodeResp renders a response in its canonical wire form. It panics on
// paths over MaxWirePath, like EncodeProbe.
func EncodeResp(r Resp) []byte {
	if len(r.Path) > MaxWirePath {
		panic(fmt.Sprintf("tq: encoding a %d-hop path exceeds the wire cap %d", len(r.Path), MaxWirePath))
	}
	b := make([]byte, respWireHeader+8*len(r.Path))
	b[0] = respWireVersion
	b[1] = r.Kind
	b[2] = clampByte(r.Attempt)
	if r.Has {
		b[3] = 1
	}
	binary.LittleEndian.PutUint64(b[4:], r.Op)
	binary.LittleEndian.PutUint64(b[12:], uint64(r.Replica))
	binary.LittleEndian.PutUint64(b[20:], r.Tag)
	binary.LittleEndian.PutUint64(b[28:], math.Float64bits(r.Val))
	binary.LittleEndian.PutUint64(b[36:], uint64(r.Deadline))
	b[44] = byte(len(r.Path))
	off := respWireHeader
	for _, id := range r.Path {
		binary.LittleEndian.PutUint64(b[off:], uint64(id))
		off += 8
	}
	return b
}

// DecodeResp parses a wire response with the same guarantees as
// DecodeProbe: no panics on adversarial input, canonical round-trip for
// every accepted input.
func DecodeResp(b []byte) (Resp, error) {
	if len(b) < respWireHeader {
		return Resp{}, fmt.Errorf("tq: resp truncated at %d bytes", len(b))
	}
	if b[0] != respWireVersion {
		return Resp{}, fmt.Errorf("tq: unknown resp wire version %d", b[0])
	}
	if b[1] != KindRead && b[1] != KindWrite {
		return Resp{}, fmt.Errorf("tq: unknown resp kind %d", b[1])
	}
	if b[3] > 1 {
		return Resp{}, fmt.Errorf("tq: non-canonical resp has byte %d", b[3])
	}
	n := int(b[44])
	if n > MaxWirePath {
		return Resp{}, fmt.Errorf("tq: resp path of %d exceeds the wire cap %d", n, MaxWirePath)
	}
	if len(b) != respWireHeader+8*n {
		return Resp{}, fmt.Errorf("tq: resp with %d path entries is %d bytes, want %d", n, len(b), respWireHeader+8*n)
	}
	r := Resp{
		Op:       binary.LittleEndian.Uint64(b[4:]),
		Kind:     b[1],
		Attempt:  int(b[2]),
		Has:      b[3] == 1,
		Replica:  graph.NodeID(binary.LittleEndian.Uint64(b[12:])),
		Tag:      binary.LittleEndian.Uint64(b[20:]),
		Val:      math.Float64frombits(binary.LittleEndian.Uint64(b[28:])),
		Deadline: int64(binary.LittleEndian.Uint64(b[36:])),
	}
	if n > 0 {
		r.Path = make([]graph.NodeID, n)
		off := respWireHeader
		for i := range r.Path {
			r.Path[i] = graph.NodeID(binary.LittleEndian.Uint64(b[off:]))
			off += 8
		}
	}
	return r, nil
}
