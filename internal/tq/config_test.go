package tq

import (
	"math"
	"strings"
	"testing"
)

// TestConfigBoundaries probes each knob just inside and just outside its
// valid range, matching the node/config_test.go convention: validation
// judges EFFECTIVE (defaulted) values, so a zero field is always valid.
func TestConfigBoundaries(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr string // "" = must validate
	}{
		{"zero value", Config{}, ""},
		{"quorum coeff at floor", Config{QuorumCoeff: 0.1}, ""},
		{"quorum coeff negative", Config{QuorumCoeff: -1}, "QuorumCoeff"},
		{"quorum coeff NaN", Config{QuorumCoeff: math.NaN()}, "QuorumCoeff"},
		{"quorum coeff Inf", Config{QuorumCoeff: math.Inf(1)}, "QuorumCoeff"},
		{"walk ttl at floor", Config{WalkTTL: 1}, ""},
		{"walk ttl at cap", Config{WalkTTL: MaxWirePath - 1}, ""},
		{"walk ttl past cap", Config{WalkTTL: MaxWirePath}, "WalkTTL"},
		{"walk ttl negative", Config{WalkTTL: -1}, "WalkTTL"},
		{"walkers at cap", Config{Walkers: 128}, ""},
		{"walkers past cap", Config{Walkers: 129}, "Walkers"},
		{"walkers negative", Config{Walkers: -1}, "Walkers"},
		{"explicit lease", Config{Lease: 40}, ""},
		{"lease negative", Config{Lease: -1}, "Lease"},
		{"min lease at floor", Config{MinLease: 1}, ""},
		{"min lease negative", Config{MinLease: -1}, "MinLease"},
		{"max lease below min", Config{MinLease: 50, MaxLease: 49}, "MaxLease"},
		{"max lease equals min", Config{MinLease: 50, MaxLease: 50}, ""},
		{"lease scale negative", Config{LeaseScale: -0.5}, "LeaseScale"},
		{"lease scale NaN", Config{LeaseScale: math.NaN()}, "LeaseScale"},
		{"sample every at floor", Config{SampleEvery: 1}, ""},
		{"sample every negative", Config{SampleEvery: -1}, "SampleEvery"},
		{"retry budget at cap", Config{RetryBudget: 32}, ""},
		{"retry budget past cap", Config{RetryBudget: 33}, "RetryBudget"},
		{"retry budget negative", Config{RetryBudget: -1}, "RetryBudget"},
		{"backoff at floor", Config{Backoff: 1}, ""},
		{"backoff negative", Config{Backoff: -1}, "Backoff"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: validated, want error mentioning %q", tc.name, tc.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	d := Config{}.WithDefaults()
	if d.QuorumCoeff != 1.0 || d.WalkTTL != 8 || d.MinLease != 16 || d.MaxLease != 192 {
		t.Fatalf("unexpected defaults: %+v", d)
	}
	if d.LeaseScale != 0.5 || d.SampleEvery != 16 || d.RetryBudget != 3 || d.Backoff != 8 {
		t.Fatalf("unexpected defaults: %+v", d)
	}
	// Defaults must themselves validate.
	if err := d.Validate(); err != nil {
		t.Fatalf("defaults do not validate: %v", err)
	}
	// Explicit values survive defaulting.
	c := Config{WalkTTL: 5, Lease: 30, Walkers: 3}.WithDefaults()
	if c.WalkTTL != 5 || c.Lease != 30 || c.Walkers != 3 {
		t.Fatalf("explicit values overwritten: %+v", c)
	}
}

func TestQuorumAndWalkerSizing(t *testing.T) {
	c := NewClient(Config{})
	for _, tc := range []struct{ n, q int }{{1, 1}, {4, 2}, {16, 4}, {64, 8}, {100, 10}, {1024, 32}} {
		if q := c.quorumSize(tc.n); q != tc.q {
			t.Errorf("quorumSize(%d) = %d, want %d", tc.n, q, tc.q)
		}
	}
	// Coefficient scales and clamps.
	c2 := NewClient(Config{QuorumCoeff: 3})
	if q := c2.quorumSize(4); q != 4 {
		t.Errorf("oversized quorum not clamped to n: got %d", q)
	}
	// Auto walker fleet covers the quorum twice over per TTL.
	if k := c.walkers(8); k != 2 {
		t.Errorf("walkers(q=8) = %d, want 2", k)
	}
	if k := c.walkers(32); k != 8 {
		t.Errorf("walkers(q=32) = %d, want 8", k)
	}
	c3 := NewClient(Config{Walkers: 5})
	if k := c3.walkers(32); k != 5 {
		t.Errorf("explicit walkers ignored: got %d", k)
	}
}
