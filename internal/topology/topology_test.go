package topology

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// applyChanges replays reported changes onto a shadow graph, verifying the
// overlay reports exactly what it does.
func shadowCheck(t *testing.T, ov Overlay, ops func(record func([]Change))) {
	t.Helper()
	shadow := graph.New()
	nodes := map[graph.NodeID]bool{}
	record := func(chs []Change) {
		for _, c := range chs {
			if c.Up {
				shadow.AddEdge(c.U, c.V)
			} else {
				shadow.RemoveEdge(c.U, c.V)
			}
		}
	}
	_ = nodes
	ops(record)
	got := ov.Graph()
	for _, v := range got.Nodes() {
		for _, u := range got.Neighbors(v) {
			if !shadow.HasEdge(v, u) {
				t.Fatalf("%s: edge %d-%d present but never reported Up", ov.Name(), v, u)
			}
		}
	}
	for _, v := range shadow.Nodes() {
		for _, u := range shadow.Neighbors(v) {
			if !got.HasEdge(v, u) {
				t.Fatalf("%s: edge %d-%d reported Up but absent", ov.Name(), v, u)
			}
		}
	}
}

func churnScript(ov Overlay, record func([]Change)) {
	// Join 1..10, remove a few, join more — a generic churn script.
	for i := 1; i <= 10; i++ {
		record(ov.AddNode(graph.NodeID(i)))
	}
	for _, v := range []graph.NodeID{3, 7, 1} {
		record(ov.RemoveNode(v))
	}
	for i := 11; i <= 15; i++ {
		record(ov.AddNode(graph.NodeID(i)))
	}
	record(ov.RemoveNode(12))
}

func overlays() []Overlay {
	return []Overlay{NewMesh(), NewStar(), NewRing(42), NewRandomK(42, 3), NewGrowingPath(), NewFragile(42)}
}

func TestFragileNeverRepairs(t *testing.T) {
	f := NewFragile(9)
	for i := 1; i <= 12; i++ {
		ch := f.AddNode(graph.NodeID(i))
		if i == 1 && len(ch) != 0 {
			t.Fatalf("first joiner got edges: %v", ch)
		}
		if i > 1 && len(ch) != 1 {
			t.Fatalf("joiner %d got %d edges, want 1", i, len(ch))
		}
	}
	if !f.Graph().Connected() {
		t.Fatal("join-only fragile graph should be a connected tree")
	}
	if f.Graph().NumEdges() != 11 {
		t.Fatalf("tree on 12 nodes has %d edges", f.Graph().NumEdges())
	}
	// Removing an interior node must only drop edges, never add any.
	for _, v := range f.Graph().Nodes() {
		if f.Graph().Degree(v) >= 2 {
			ch := f.RemoveNode(v)
			for _, c := range ch {
				if c.Up {
					t.Fatalf("fragile overlay repaired: %v", c)
				}
			}
			if f.Graph().Connected() {
				t.Fatal("removing an interior tree node should partition a fragile overlay")
			}
			return
		}
	}
	t.Fatal("no interior node found in a 12-node tree")
}

func TestChangesMatchGraph(t *testing.T) {
	for _, ov := range overlays() {
		ov := ov
		t.Run(ov.Name(), func(t *testing.T) {
			shadowCheck(t, ov, func(record func([]Change)) { churnScript(ov, record) })
		})
	}
}

func TestMeshComplete(t *testing.T) {
	m := NewMesh()
	churnScript(m, func([]Change) {})
	g := m.Graph()
	n := g.NumNodes()
	if g.NumEdges() != n*(n-1)/2 {
		t.Fatalf("mesh not complete: %d nodes, %d edges", n, g.NumEdges())
	}
}

func TestStarDiameterAtMostTwo(t *testing.T) {
	s := NewStar()
	record := func([]Change) {}
	for i := 1; i <= 20; i++ {
		record(s.AddNode(graph.NodeID(i)))
		if d, ok := s.Graph().Diameter(); !ok || d > 2 {
			t.Fatalf("star diameter %d (ok=%v) after join %d", d, ok, i)
		}
	}
	// Kill the hub repeatedly; a successor must be promoted each time.
	for _, hub := range []graph.NodeID{1, 2, 3} {
		record(s.RemoveNode(hub))
		if d, ok := s.Graph().Diameter(); !ok || d > 2 {
			t.Fatalf("star diameter %d (ok=%v) after hub %d left", d, ok, hub)
		}
	}
}

func TestStarSingletonAndPair(t *testing.T) {
	s := NewStar()
	s.AddNode(1)
	if ch := s.RemoveNode(1); len(ch) != 0 {
		t.Fatalf("removing singleton reported %v", ch)
	}
	s.AddNode(2)
	s.AddNode(3)
	if !s.Graph().HasEdge(2, 3) {
		t.Fatal("pair not connected")
	}
}

func TestRingAlwaysConnectedDegreeTwo(t *testing.T) {
	rg := NewRing(7)
	r := rng.New(99)
	present := []graph.NodeID{}
	next := graph.NodeID(0)
	for step := 0; step < 300; step++ {
		if len(present) < 3 || r.Bool(0.6) {
			next++
			rg.AddNode(next)
			present = append(present, next)
		} else {
			i := r.Intn(len(present))
			rg.RemoveNode(present[i])
			present = append(present[:i], present[i+1:]...)
		}
		g := rg.Graph()
		if !g.Connected() {
			t.Fatalf("ring disconnected at step %d with %d members", step, len(present))
		}
		if n := g.NumNodes(); n >= 3 {
			for _, v := range g.Nodes() {
				if d := g.Degree(v); d != 2 {
					t.Fatalf("ring degree %d at node %d (n=%d, step %d)", d, v, n, step)
				}
			}
		}
	}
}

func TestRingRemoveUnknownNode(t *testing.T) {
	rg := NewRing(1)
	rg.AddNode(1)
	if ch := rg.RemoveNode(99); ch != nil {
		t.Fatalf("removing unknown node reported %v", ch)
	}
}

func TestRandomKDegreesBounded(t *testing.T) {
	rk := NewRandomK(5, 3)
	for i := 1; i <= 50; i++ {
		ch := rk.AddNode(graph.NodeID(i))
		if len(ch) > 3 {
			t.Fatalf("join added %d edges, want <= 3", len(ch))
		}
	}
	if !rk.Graph().Connected() {
		// k=3 random attachment yields a connected graph when built by
		// pure joins (each joiner attaches to the existing component).
		t.Fatal("join-only random-k graph should be connected")
	}
}

func TestRandomKNoIsolatedAfterLeave(t *testing.T) {
	rk := NewRandomK(6, 2)
	for i := 1; i <= 30; i++ {
		rk.AddNode(graph.NodeID(i))
	}
	r := rng.New(3)
	nodes := rk.Graph().Nodes()
	r.Shuffle(len(nodes), func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
	for _, v := range nodes[:15] {
		rk.RemoveNode(v)
		g := rk.Graph()
		if g.NumNodes() < 2 {
			continue
		}
		for _, u := range g.Nodes() {
			if g.Degree(u) == 0 {
				t.Fatalf("node %d isolated after removal of %d", u, v)
			}
		}
	}
}

func TestRandomKPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRandomK(seed, 0) did not panic")
		}
	}()
	NewRandomK(1, 0)
}

func TestGrowingPathDiameterGrows(t *testing.T) {
	gp := NewGrowingPath()
	for i := 1; i <= 30; i++ {
		gp.AddNode(graph.NodeID(i))
	}
	d, ok := gp.Graph().Diameter()
	if !ok || d != 29 {
		t.Fatalf("growing path diameter = %d (ok=%v), want 29", d, ok)
	}
}

func TestGrowingPathBridgesOnLeave(t *testing.T) {
	gp := NewGrowingPath()
	for i := 1; i <= 5; i++ {
		gp.AddNode(graph.NodeID(i))
	}
	gp.RemoveNode(3)
	g := gp.Graph()
	if !g.Connected() {
		t.Fatal("path disconnected after interior leave")
	}
	if !g.HasEdge(2, 4) {
		t.Fatal("bridge edge 2-4 missing")
	}
	// Tail leave needs no bridge.
	gp.RemoveNode(5)
	if !gp.Graph().Connected() {
		t.Fatal("path disconnected after tail leave")
	}
	// New joiner attaches to the new tail (4).
	gp.AddNode(6)
	if !gp.Graph().HasEdge(4, 6) {
		t.Fatal("joiner did not attach to tail")
	}
}

func TestBuildRing(t *testing.T) {
	g := BuildRing(8)
	if d, ok := g.Diameter(); !ok || d != 4 {
		t.Fatalf("BuildRing(8) diameter = %d, %v", d, ok)
	}
	if g.NumEdges() != 8 {
		t.Fatalf("BuildRing(8) has %d edges", g.NumEdges())
	}
	if BuildRing(1).NumEdges() != 0 {
		t.Fatal("BuildRing(1) should have no edges")
	}
}

func TestBuildPath(t *testing.T) {
	g := BuildPath(10)
	if d, ok := g.Diameter(); !ok || d != 9 {
		t.Fatalf("BuildPath(10) diameter = %d, %v", d, ok)
	}
}

func TestBuildGrid(t *testing.T) {
	g := BuildGrid(4, 3)
	if g.NumNodes() != 12 {
		t.Fatalf("grid nodes = %d", g.NumNodes())
	}
	if d, ok := g.Diameter(); !ok || d != 5 {
		t.Fatalf("BuildGrid(4,3) diameter = %d, %v, want 5", d, ok)
	}
}

func TestBuildTorus(t *testing.T) {
	g := BuildTorus(4, 4)
	if d, ok := g.Diameter(); !ok || d != 4 {
		t.Fatalf("BuildTorus(4,4) diameter = %d, %v, want 4", d, ok)
	}
	for _, v := range g.Nodes() {
		if g.Degree(v) != 4 {
			t.Fatalf("torus node %d has degree %d", v, g.Degree(v))
		}
	}
}

func TestBuildComplete(t *testing.T) {
	g := BuildComplete(6)
	if g.NumEdges() != 15 {
		t.Fatalf("BuildComplete(6) edges = %d", g.NumEdges())
	}
	if d, ok := g.Diameter(); !ok || d != 1 {
		t.Fatalf("BuildComplete(6) diameter = %d, %v", d, ok)
	}
}

func TestOverlayNames(t *testing.T) {
	seen := map[string]bool{}
	for _, ov := range overlays() {
		n := ov.Name()
		if n == "" || seen[n] {
			t.Errorf("bad or duplicate overlay name %q", n)
		}
		seen[n] = true
	}
}

func TestChangeString(t *testing.T) {
	up := Change{Up: true, U: 1, V: 2}
	down := Change{Up: false, U: 1, V: 2}
	if up.String() == down.String() {
		t.Error("up and down changes render identically")
	}
}
