package topology

import (
	"math"
	"sort"

	"repro/internal/graph"
)

// FingerRing is a structured overlay in the spirit of Chord: members are
// hashed onto a circular identifier space, each keeps its ring successor
// plus "finger" links to the first member at hash-space distance 2^k for
// every k. The graph's diameter is O(log n) with high probability, and —
// unlike the plain ring — the bound is *computable from a membership
// bound*: a system that caps concurrency at b gets diameter
// <= 2*ceil(log2 b) at all times. Structured overlays are how real
// dynamic systems buy themselves back into the known-diameter class the
// paper shows the One-Time Query needs.
//
// Fingers are anchored in hash space, so a membership change only
// rewires the O(log n) fingers that now resolve differently — in-flight
// protocols keep most of their paths. Maintenance is idealized and
// immediate (the overlay recomputes the ideal finger set after every
// membership change and applies the difference); the cost of lazy
// stabilization is not modeled.
type FingerRing struct {
	base
	members []graph.NodeID // sorted by hash position
}

// NewFingerRing returns an empty finger-ring overlay.
func NewFingerRing() *FingerRing { return &FingerRing{base: newBase()} }

// Name implements Overlay.
func (*FingerRing) Name() string { return "finger-ring" }

// HashPos hashes an identifier onto the circular space (splitmix64 mix).
// It is the position function shared by the finger-ring overlay and the
// greedy key-lookup protocol (internal/lookup).
func HashPos(id graph.NodeID) uint64 {
	z := uint64(id) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (fr *FingerRing) less(a, b graph.NodeID) bool {
	pa, pb := HashPos(a), HashPos(b)
	if pa != pb {
		return pa < pb
	}
	return a < b // hash ties broken by ID (IDs are unique)
}

// successorOf returns the first member at or clockwise after target.
func (fr *FingerRing) successorOf(target uint64) graph.NodeID {
	i := sort.Search(len(fr.members), func(i int) bool {
		return HashPos(fr.members[i]) >= target
	})
	if i == len(fr.members) {
		i = 0 // wrap around
	}
	return fr.members[i]
}

// desiredEdges returns the ideal edge set over the current membership:
// each member links to its ring successor and to the successor of every
// point at hash-space distance 2^k from it.
func (fr *FingerRing) desiredEdges() map[[2]graph.NodeID]bool {
	edges := make(map[[2]graph.NodeID]bool)
	n := len(fr.members)
	if n < 2 {
		return edges
	}
	add := func(u, v graph.NodeID) {
		if u == v {
			return
		}
		a, b := u, v
		if a > b {
			a, b = b, a
		}
		edges[[2]graph.NodeID{a, b}] = true
	}
	for i, u := range fr.members {
		add(u, fr.members[(i+1)%n]) // ring successor
		for k := uint(0); k < 64; k++ {
			add(u, fr.successorOf(HashPos(u)+1<<k))
		}
	}
	return edges
}

// reconcile diffs the current graph against the ideal edge set and
// returns the changes applied.
func (fr *FingerRing) reconcile() []Change {
	want := fr.desiredEdges()
	var ch []Change
	// Remove edges that should no longer exist.
	for _, u := range fr.g.Nodes() {
		for _, v := range fr.g.Neighbors(u) {
			if u > v {
				continue // visit each edge once
			}
			if !want[[2]graph.NodeID{u, v}] {
				fr.g.RemoveEdge(u, v)
				ch = append(ch, Change{Up: false, U: u, V: v})
			}
		}
	}
	// Add the missing ideal edges, deterministically ordered.
	keys := make([][2]graph.NodeID, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		if !fr.g.HasEdge(k[0], k[1]) {
			ch = fr.addEdge(ch, k[0], k[1])
		}
	}
	return ch
}

// AddNode splices p into the hash ring and reconciles fingers.
func (fr *FingerRing) AddNode(p graph.NodeID) []Change {
	fr.g.AddNode(p)
	i := sort.Search(len(fr.members), func(i int) bool { return !fr.less(fr.members[i], p) })
	fr.members = append(fr.members, 0)
	copy(fr.members[i+1:], fr.members[i:])
	fr.members[i] = p
	return fr.reconcile()
}

// RemoveNode drops p and reconciles fingers.
func (fr *FingerRing) RemoveNode(p graph.NodeID) []Change {
	i := sort.Search(len(fr.members), func(i int) bool { return !fr.less(fr.members[i], p) })
	if i < len(fr.members) && fr.members[i] == p {
		fr.members = append(fr.members[:i], fr.members[i+1:]...)
	}
	ch := fr.dropNode(nil, p)
	return append(ch, fr.reconcile()...)
}

// FingerDiameterBound returns the structured overlay's diameter bound for
// a membership of at most b: 2*ceil(log2 b) (and at least 1). Protocols
// in an M^b class use it as the known TTL.
func FingerDiameterBound(b int) int {
	if b <= 2 {
		return 1
	}
	return 2 * int(math.Ceil(math.Log2(float64(b))))
}

// BuildFingerRing returns the static finger-ring graph on n nodes with
// IDs 1..n (for diameter-vs-n measurements).
func BuildFingerRing(n int) *graph.Graph {
	fr := NewFingerRing()
	for i := 1; i <= n; i++ {
		fr.AddNode(graph.NodeID(i))
	}
	return fr.Graph().Clone()
}
