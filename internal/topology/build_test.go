package topology

import (
	"testing"

	"repro/internal/graph"
)

// buildSizes sweeps the static builders across the population range the
// experiments actually use: tiny (6), awkward prime (37), round (100),
// and the largest E27 world (256).
var buildSizes = []int{6, 37, 100, 256}

func TestBuildRingSizes(t *testing.T) {
	for _, n := range buildSizes {
		g := BuildRing(n)
		if g.NumNodes() != n || g.NumEdges() != n {
			t.Fatalf("ring %d: %d nodes, %d edges", n, g.NumNodes(), g.NumEdges())
		}
		if hist := g.DegreeHistogram(); len(hist) != 1 || hist[2] != n {
			t.Fatalf("ring %d degree histogram: %v", n, hist)
		}
		d, ok := g.Diameter()
		if !ok || d != n/2 {
			t.Fatalf("ring %d diameter = %d (%v), want %d", n, d, ok, n/2)
		}
	}
}

func TestBuildPathSizes(t *testing.T) {
	for _, n := range buildSizes {
		g := BuildPath(n)
		if g.NumNodes() != n || g.NumEdges() != n-1 {
			t.Fatalf("path %d: %d nodes, %d edges", n, g.NumNodes(), g.NumEdges())
		}
		d, ok := g.Diameter()
		if !ok || d != n-1 {
			t.Fatalf("path %d diameter = %d (%v)", n, d, ok)
		}
		if hist := g.DegreeHistogram(); hist[1] != 2 || hist[2] != n-2 {
			t.Fatalf("path %d degree histogram: %v", n, hist)
		}
	}
}

func TestBuildCompleteSizes(t *testing.T) {
	for _, n := range buildSizes {
		g := BuildComplete(n)
		if g.NumNodes() != n || g.NumEdges() != n*(n-1)/2 {
			t.Fatalf("K%d: %d nodes, %d edges", n, g.NumNodes(), g.NumEdges())
		}
		if d, ok := g.Diameter(); !ok || d != 1 {
			t.Fatalf("K%d diameter = %d (%v)", n, d, ok)
		}
		if c := g.AvgClustering(); c != 1 {
			t.Fatalf("K%d clustering = %v", n, c)
		}
	}
}

func TestBuildGridAndTorusSizes(t *testing.T) {
	// Dimension pairs hitting the sweep sizes: 2x3=6, 37x1 (degenerate
	// path), 10x10=100, 16x16=256.
	for _, dim := range [][2]int{{2, 3}, {37, 1}, {10, 10}, {16, 16}} {
		w, h := dim[0], dim[1]
		n := w * h
		g := BuildGrid(w, h)
		if g.NumNodes() != n {
			t.Fatalf("grid %dx%d: %d nodes", w, h, g.NumNodes())
		}
		if got, want := g.NumEdges(), (w-1)*h+(h-1)*w; got != want {
			t.Fatalf("grid %dx%d: %d edges, want %d", w, h, got, want)
		}
		if d, ok := g.Diameter(); !ok || d != w+h-2 {
			t.Fatalf("grid %dx%d diameter = %d (%v), want %d", w, h, d, ok, w+h-2)
		}
		tor := BuildTorus(w, h)
		if !tor.Connected() || tor.NumNodes() != n {
			t.Fatalf("torus %dx%d not connected or wrong size", w, h)
		}
		// Wrap edges only close dimensions of length >= 3.
		want := g.NumEdges()
		if w > 2 {
			want += h
		}
		if h > 2 {
			want += w
		}
		if got := tor.NumEdges(); got != want {
			t.Fatalf("torus %dx%d: %d edges, want %d", w, h, got, want)
		}
	}
}

func TestBuildFingerRingSizes(t *testing.T) {
	for _, n := range buildSizes {
		g := BuildFingerRing(n)
		if g.NumNodes() != n || !g.Connected() {
			t.Fatalf("finger ring %d: %d nodes connected=%v", n, g.NumNodes(), g.Connected())
		}
		// The chords must only shorten paths: never below the ring's node
		// or edge count, and the diameter is logarithmic, not linear.
		if g.NumEdges() < n {
			t.Fatalf("finger ring %d lost ring edges: %d", n, g.NumEdges())
		}
		if d, ok := g.Diameter(); !ok || (n >= 37 && d >= n/4) {
			t.Fatalf("finger ring %d diameter = %d (%v): chords not shortening", n, d, ok)
		}
	}
}

// TestBuildersShareIDConvention: every builder numbers nodes 1..n (the
// churn generator's allocation convention), so experiment scripts can
// address members positionally at any sweep size.
func TestBuildersShareIDConvention(t *testing.T) {
	for _, n := range buildSizes {
		for name, g := range map[string]*graph.Graph{
			"ring": BuildRing(n), "path": BuildPath(n), "complete": BuildComplete(n),
		} {
			if !g.HasNode(1) || !g.HasNode(graph.NodeID(n)) || g.HasNode(0) || g.HasNode(graph.NodeID(n+1)) {
				t.Fatalf("%s %d: node IDs not 1..n", name, n)
			}
		}
	}
}
