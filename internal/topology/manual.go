package topology

import "repro/internal/graph"

// LinkController is implemented by overlays whose edges the experiment
// harness can flip directly — used to stage partitions and transient
// unreachability, the geography pathologies behind the paper's
// impossibility arguments.
type LinkController interface {
	// Link brings edge {u, v} up (no-op if present or an endpoint is
	// absent) and returns the changes performed.
	Link(u, v graph.NodeID) []Change
	// Unlink takes edge {u, v} down (no-op if absent) and returns the
	// changes performed.
	Unlink(u, v graph.NodeID) []Change
}

// Manual is an overlay with no maintenance policy at all: joiners arrive
// isolated and every edge is placed or removed explicitly through the
// LinkController interface. It is the scenario-scripting overlay.
type Manual struct{ base }

// NewManual returns an empty manual overlay.
func NewManual() *Manual { return &Manual{base: newBase()} }

// Name implements Overlay.
func (*Manual) Name() string { return "manual" }

// AddNode inserts p isolated.
func (m *Manual) AddNode(p graph.NodeID) []Change {
	m.g.AddNode(p)
	return nil
}

// RemoveNode drops p and its edges.
func (m *Manual) RemoveNode(p graph.NodeID) []Change {
	return m.dropNode(nil, p)
}

// Link implements LinkController.
func (m *Manual) Link(u, v graph.NodeID) []Change {
	if !m.g.HasNode(u) || !m.g.HasNode(v) {
		return nil
	}
	return m.addEdge(nil, u, v)
}

// Unlink implements LinkController.
func (m *Manual) Unlink(u, v graph.NodeID) []Change {
	if !m.g.HasEdge(u, v) {
		return nil
	}
	m.g.RemoveEdge(u, v)
	return []Change{{Up: false, U: u, V: v}}
}

var _ LinkController = (*Manual)(nil)
