// Package topology maintains the evolving communication graph G(t) of a
// dynamic system: which entities are neighbors, and how the overlay reacts
// when entities join or leave. It realizes the geography dimension of the
// paper's classification.
//
// An Overlay owns a graph and mutates it on membership changes, reporting
// every edge change so the simulation driver can record it in the run
// trace. The implementations span the geography classes:
//
//   - Mesh: complete graph — the classical "everybody knows everybody"
//     assumption (GeoComplete).
//   - Star: all members attach to a hub (re-elected on hub departure) —
//     always connected with diameter <= 2 (GeoDiameterKnown).
//   - Ring: members form a cycle repaired on leave — always connected,
//     diameter grows with membership (GeoDiameterBounded per run).
//   - RandomK: each joiner picks k random neighbors — the typical
//     unstructured P2P overlay; connectivity is probabilistic only
//     (GeoUnconstrained).
//   - GrowingPath: each joiner attaches to the previous one — the
//     adversarial geography whose diameter grows without bound.
package topology

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Change is one edge flip: Up reports whether edge {U, V} appeared.
type Change struct {
	Up   bool
	U, V graph.NodeID
}

func (c Change) String() string {
	dir := "down"
	if c.Up {
		dir = "up"
	}
	return fmt.Sprintf("edge %d-%d %s", c.U, c.V, dir)
}

// Overlay maintains the communication graph across membership changes.
// Implementations are deterministic given their seed.
type Overlay interface {
	// AddNode brings a new entity into the overlay and returns the edge
	// changes performed (all Up).
	AddNode(p graph.NodeID) []Change
	// RemoveNode takes an entity out and returns the edge changes: the
	// implicit removal of its incident edges (Down) followed by any
	// repair edges (Up).
	RemoveNode(p graph.NodeID) []Change
	// Graph returns the current communication graph. Callers must not
	// mutate it.
	Graph() *graph.Graph
	// Name identifies the overlay in experiment output.
	Name() string
}

// base carries the graph bookkeeping shared by all overlays.
type base struct {
	g *graph.Graph
}

func newBase() base { return base{g: graph.New()} }

func (b *base) Graph() *graph.Graph { return b.g }

// addEdge inserts the edge and appends the change.
func (b *base) addEdge(changes []Change, u, v graph.NodeID) []Change {
	if u == v || b.g.HasEdge(u, v) {
		return changes
	}
	b.g.AddEdge(u, v)
	return append(changes, Change{Up: true, U: u, V: v})
}

// dropNode removes p, appending a Down change per lost edge.
func (b *base) dropNode(changes []Change, p graph.NodeID) []Change {
	for _, u := range b.g.Neighbors(p) {
		changes = append(changes, Change{Up: false, U: p, V: u})
	}
	b.g.RemoveNode(p)
	return changes
}

// Mesh is the complete-graph overlay.
type Mesh struct{ base }

// NewMesh returns an empty complete-graph overlay.
func NewMesh() *Mesh { return &Mesh{base: newBase()} }

// Name implements Overlay.
func (*Mesh) Name() string { return "mesh" }

// AddNode connects p to every present entity.
func (m *Mesh) AddNode(p graph.NodeID) []Change {
	others := m.g.Nodes()
	m.g.AddNode(p)
	var ch []Change
	for _, u := range others {
		ch = m.addEdge(ch, p, u)
	}
	return ch
}

// RemoveNode drops p; a complete graph needs no repair.
func (m *Mesh) RemoveNode(p graph.NodeID) []Change {
	return m.dropNode(nil, p)
}

// Star attaches every member to a hub. When the hub leaves, the
// longest-present member is promoted and everyone re-attaches, keeping
// the graph connected with diameter at most 2 at all times.
type Star struct {
	base
	order []graph.NodeID // members in join order; order[0] is the hub
}

// NewStar returns an empty star overlay.
func NewStar() *Star { return &Star{base: newBase()} }

// Name implements Overlay.
func (*Star) Name() string { return "star" }

// AddNode attaches p to the hub (or makes p the hub of a singleton).
func (s *Star) AddNode(p graph.NodeID) []Change {
	s.g.AddNode(p)
	s.order = append(s.order, p)
	if len(s.order) == 1 {
		return nil
	}
	return s.addEdge(nil, p, s.order[0])
}

// RemoveNode detaches p; if p was the hub, the oldest member takes over.
func (s *Star) RemoveNode(p graph.NodeID) []Change {
	wasHub := len(s.order) > 0 && s.order[0] == p
	for i, v := range s.order {
		if v == p {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	ch := s.dropNode(nil, p)
	if wasHub && len(s.order) > 1 {
		hub := s.order[0]
		for _, v := range s.order[1:] {
			ch = s.addEdge(ch, v, hub)
		}
	}
	return ch
}

// Ring keeps members on a cycle; joiners splice in next to a deterministic
// position and a leaver's neighbors are bridged, so the graph stays
// connected (diameter ~ membership/2).
type Ring struct {
	base
	r     *rng.Rand
	order []graph.NodeID // cyclic order
}

// NewRing returns an empty ring overlay; seed drives splice positions.
func NewRing(seed uint64) *Ring { return &Ring{base: newBase(), r: rng.New(seed)} }

// Name implements Overlay.
func (*Ring) Name() string { return "ring" }

func (rg *Ring) at(i int) graph.NodeID { return rg.order[(i+len(rg.order))%len(rg.order)] }

// AddNode splices p into the cycle at a random position.
func (rg *Ring) AddNode(p graph.NodeID) []Change {
	rg.g.AddNode(p)
	n := len(rg.order)
	switch n {
	case 0:
		rg.order = []graph.NodeID{p}
		return nil
	case 1:
		rg.order = append(rg.order, p)
		return rg.addEdge(nil, p, rg.order[0])
	}
	i := rg.r.Intn(n) // splice between order[i] and order[i+1]
	a, b := rg.at(i), rg.at(i+1)
	var ch []Change
	if n > 2 { // for n == 2 the "cycle" is a single double-used edge
		rg.g.RemoveEdge(a, b)
		ch = append(ch, Change{Up: false, U: a, V: b})
	}
	ch = rg.addEdge(ch, a, p)
	ch = rg.addEdge(ch, p, b)
	rest := append([]graph.NodeID{}, rg.order[i+1:]...)
	rg.order = append(append(rg.order[:i+1], p), rest...)
	return ch
}

// RemoveNode bridges p's ring neighbors.
func (rg *Ring) RemoveNode(p graph.NodeID) []Change {
	idx := -1
	for i, v := range rg.order {
		if v == p {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	n := len(rg.order)
	var a, b graph.NodeID
	if n > 2 {
		a, b = rg.at(idx-1), rg.at(idx+1)
	}
	rg.order = append(rg.order[:idx], rg.order[idx+1:]...)
	ch := rg.dropNode(nil, p)
	if n > 2 {
		ch = rg.addEdge(ch, a, b)
	}
	return ch
}

// RandomK is an unstructured overlay: each joiner connects to up to K
// random members. A leaver's neighbors that end up isolated re-attach to
// a random member, but global connectivity is probabilistic only — this
// is the overlay whose runs fall in the unconstrained geography class.
type RandomK struct {
	base
	r *rng.Rand
	k int
}

// NewRandomK returns an empty k-random overlay. k must be positive.
func NewRandomK(seed uint64, k int) *RandomK {
	if k <= 0 {
		panic("topology: NewRandomK with non-positive k")
	}
	return &RandomK{base: newBase(), r: rng.New(seed), k: k}
}

// Name implements Overlay.
func (rk *RandomK) Name() string { return fmt.Sprintf("random-%d", rk.k) }

// pick returns up to k distinct members other than p, uniformly.
func (rk *RandomK) pick(p graph.NodeID, k int) []graph.NodeID {
	candidates := make([]graph.NodeID, 0, rk.g.NumNodes())
	for _, v := range rk.g.Nodes() {
		if v != p {
			candidates = append(candidates, v)
		}
	}
	if len(candidates) <= k {
		return candidates
	}
	rk.r.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	return candidates[:k]
}

// AddNode connects p to up to K random members.
func (rk *RandomK) AddNode(p graph.NodeID) []Change {
	targets := rk.pick(p, rk.k)
	rk.g.AddNode(p)
	var ch []Change
	for _, u := range targets {
		ch = rk.addEdge(ch, p, u)
	}
	return ch
}

// RemoveNode drops p and re-attaches any neighbor it isolated.
func (rk *RandomK) RemoveNode(p graph.NodeID) []Change {
	orphanCandidates := rk.g.Neighbors(p)
	ch := rk.dropNode(nil, p)
	for _, u := range orphanCandidates {
		if rk.g.HasNode(u) && rk.g.Degree(u) == 0 && rk.g.NumNodes() > 1 {
			for _, v := range rk.pick(u, 1) {
				ch = rk.addEdge(ch, u, v)
			}
		}
	}
	return ch
}

// Fragile is the no-maintenance overlay: each joiner attaches to one
// random member and a leaver's edges simply vanish — no bridging, no
// orphan rescue. Under churn the graph fragments and fragments never
// re-merge except by the luck of later arrivals; it is the bare
// "neighbors only, nobody repairs anything" end of the geography
// dimension.
type Fragile struct {
	base
	r *rng.Rand
}

// NewFragile returns an empty fragile overlay.
func NewFragile(seed uint64) *Fragile { return &Fragile{base: newBase(), r: rng.New(seed)} }

// Name implements Overlay.
func (*Fragile) Name() string { return "fragile" }

// AddNode attaches p to one random existing member (or leaves it isolated
// in an empty overlay).
func (f *Fragile) AddNode(p graph.NodeID) []Change {
	others := f.g.Nodes()
	f.g.AddNode(p)
	if len(others) == 0 {
		return nil
	}
	return f.addEdge(nil, p, others[f.r.Intn(len(others))])
}

// RemoveNode drops p and its edges; nothing is repaired.
func (f *Fragile) RemoveNode(p graph.NodeID) []Change {
	return f.dropNode(nil, p)
}

// GrowingPath chains each joiner to the most recent member still present:
// the adversarial geography in which the diameter grows without bound as
// entities keep arriving. Leavers bridge their path neighbors.
type GrowingPath struct {
	base
	order []graph.NodeID // path order, head to tail
}

// NewGrowingPath returns an empty growing-path overlay.
func NewGrowingPath() *GrowingPath { return &GrowingPath{base: newBase()} }

// Name implements Overlay.
func (*GrowingPath) Name() string { return "growing-path" }

// AddNode appends p at the tail.
func (gp *GrowingPath) AddNode(p graph.NodeID) []Change {
	gp.g.AddNode(p)
	gp.order = append(gp.order, p)
	if len(gp.order) == 1 {
		return nil
	}
	return gp.addEdge(nil, gp.order[len(gp.order)-2], p)
}

// RemoveNode bridges p's path neighbors.
func (gp *GrowingPath) RemoveNode(p graph.NodeID) []Change {
	idx := -1
	for i, v := range gp.order {
		if v == p {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil
	}
	var a, b graph.NodeID
	bridge := idx > 0 && idx < len(gp.order)-1
	if bridge {
		a, b = gp.order[idx-1], gp.order[idx+1]
	}
	gp.order = append(gp.order[:idx], gp.order[idx+1:]...)
	ch := gp.dropNode(nil, p)
	if bridge {
		ch = gp.addEdge(ch, a, b)
	}
	return ch
}
