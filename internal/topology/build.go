package topology

import "repro/internal/graph"

// Static graph builders for fixed-topology experiments (diameter sweeps,
// static baselines). Node IDs are 1..n to match the churn generator's
// ID allocation convention.

// BuildComplete returns the complete graph on n nodes.
func BuildComplete(n int) *graph.Graph {
	g := graph.New()
	for i := 1; i <= n; i++ {
		g.AddNode(graph.NodeID(i))
		for j := 1; j < i; j++ {
			g.AddEdge(graph.NodeID(j), graph.NodeID(i))
		}
	}
	return g
}

// BuildRing returns the cycle on n nodes (diameter floor(n/2) for n >= 3).
func BuildRing(n int) *graph.Graph {
	g := graph.New()
	for i := 1; i <= n; i++ {
		g.AddNode(graph.NodeID(i))
	}
	for i := 1; i <= n && n > 1; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i%n+1))
	}
	return g
}

// BuildPath returns the path on n nodes (diameter n-1).
func BuildPath(n int) *graph.Graph {
	g := graph.New()
	for i := 1; i <= n; i++ {
		g.AddNode(graph.NodeID(i))
		if i > 1 {
			g.AddEdge(graph.NodeID(i-1), graph.NodeID(i))
		}
	}
	return g
}

// BuildGrid returns the w x h grid (diameter w+h-2).
func BuildGrid(w, h int) *graph.Graph {
	g := graph.New()
	id := func(x, y int) graph.NodeID { return graph.NodeID(y*w + x + 1) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.AddNode(id(x, y))
			if x > 0 {
				g.AddEdge(id(x-1, y), id(x, y))
			}
			if y > 0 {
				g.AddEdge(id(x, y-1), id(x, y))
			}
		}
	}
	return g
}

// BuildTorus returns the w x h torus (diameter floor(w/2)+floor(h/2) for
// w, h >= 3).
func BuildTorus(w, h int) *graph.Graph {
	g := BuildGrid(w, h)
	id := func(x, y int) graph.NodeID { return graph.NodeID(y*w + x + 1) }
	if w > 2 {
		for y := 0; y < h; y++ {
			g.AddEdge(id(w-1, y), id(0, y))
		}
	}
	if h > 2 {
		for x := 0; x < w; x++ {
			g.AddEdge(id(x, h-1), id(x, 0))
		}
	}
	return g
}
