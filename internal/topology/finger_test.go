package topology

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestFingerRingSmall(t *testing.T) {
	fr := NewFingerRing()
	fr.AddNode(5)
	if fr.Graph().NumEdges() != 0 {
		t.Fatal("singleton has edges")
	}
	fr.AddNode(9)
	if !fr.Graph().HasEdge(5, 9) {
		t.Fatal("pair not linked")
	}
	fr.AddNode(2)
	g := fr.Graph()
	if !g.Connected() || g.NumEdges() != 3 {
		t.Fatalf("triangle expected, got %d edges", g.NumEdges())
	}
}

func TestFingerRingDiameterLogarithmic(t *testing.T) {
	for _, n := range []int{8, 16, 32, 64, 128} {
		g := BuildFingerRing(n)
		d, ok := g.Diameter()
		if !ok {
			t.Fatalf("finger ring on %d disconnected", n)
		}
		bound := FingerDiameterBound(n)
		if d > bound {
			t.Errorf("n=%d: diameter %d exceeds bound %d", n, d, bound)
		}
		// And it genuinely beats the plain ring.
		if plain, _ := BuildRing(n).Diameter(); n >= 16 && d >= plain {
			t.Errorf("n=%d: finger diameter %d not better than ring's %d", n, d, plain)
		}
	}
}

func TestFingerRingDegreeLogarithmic(t *testing.T) {
	const n = 64
	g := BuildFingerRing(n)
	total := 0
	for _, v := range g.Nodes() {
		total += g.Degree(v)
	}
	avg := float64(total) / n
	// Each node initiates ~log2 n distinct fingers plus its successor, so
	// the AVERAGE degree is O(log n), far below n-1. (The maximum is not:
	// the owner of a large hash arc attracts fingers from everywhere —
	// in-degree concentration is inherent to Chord-style overlays.)
	if avg > 3*math.Ceil(math.Log2(n)) {
		t.Fatalf("average degree %.1f is not logarithmic for n=%d", avg, n)
	}
	if avg >= n/2 {
		t.Fatalf("average degree %.1f is closer to complete than structured", avg)
	}
}

func TestFingerRingMaintainsBoundUnderChurn(t *testing.T) {
	fr := NewFingerRing()
	r := rng.New(13)
	present := []graph.NodeID{}
	next := graph.NodeID(0)
	const cap = 32
	for step := 0; step < 200; step++ {
		if len(present) < 4 || (len(present) < cap && r.Bool(0.6)) {
			next++
			fr.AddNode(next)
			present = append(present, next)
		} else {
			i := r.Intn(len(present))
			fr.RemoveNode(present[i])
			present = append(present[:i], present[i+1:]...)
		}
		g := fr.Graph()
		if !g.Connected() {
			t.Fatalf("finger ring disconnected at step %d (n=%d)", step, len(present))
		}
		if d, ok := g.Diameter(); ok && d > FingerDiameterBound(cap) {
			t.Fatalf("step %d: diameter %d exceeds bound %d for cap %d",
				step, d, FingerDiameterBound(cap), cap)
		}
	}
}

func TestFingerRingChangesMatchGraph(t *testing.T) {
	fr := NewFingerRing()
	shadowCheck(t, fr, func(record func([]Change)) { churnScript(fr, record) })
}

func TestFingerRingRemoveUnknown(t *testing.T) {
	fr := NewFingerRing()
	fr.AddNode(1)
	fr.AddNode(2)
	before := fr.Graph().NumEdges()
	fr.RemoveNode(99)
	if fr.Graph().NumEdges() != before {
		t.Fatal("removing an unknown node changed the graph")
	}
}

func TestFingerDiameterBound(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 4: 4, 8: 6, 32: 10, 100: 14}
	for b, want := range cases {
		if got := FingerDiameterBound(b); got != want {
			t.Errorf("FingerDiameterBound(%d) = %d, want %d", b, got, want)
		}
	}
}
