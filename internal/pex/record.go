package pex

import (
	"encoding/binary"
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Record is one membership claim inside a partial view: "entity ID was
// alive at tick Epoch". Hop is the record's age in exchange hops — it
// starts at 0 when the subject mints the record, increments once per
// transfer and once per local aging round, and is deliberately NOT
// covered by the signature (it legitimately mutates in flight; a forged
// hop can at worst make a record look older or younger within the decay
// horizon). Sig is the subject's transferable signature over (ID, Epoch):
// in the model only the subject can produce it, so a validly-signed
// record with a fresh Epoch is proof the subject was recently alive — the
// claim sybil and resurrected-dead records cannot fake.
type Record struct {
	ID    graph.NodeID
	Hop   int
	Epoch int64
	Sig   uint64
}

// keyOf derives an entity's record-signing key from the ceremony seed —
// the same modeling move as the audit sublayer's sigKey.
func keyOf(keySeed uint64, id graph.NodeID) uint64 {
	return rng.New(keySeed ^ uint64(id)*0x9e3779b97f4a7c15).Uint64()
}

// sigOver computes the signature of (id, epoch) under the subject's key.
func sigOver(keySeed uint64, id graph.NodeID, epoch int64) uint64 {
	h := keyOf(keySeed, id) ^ uint64(epoch)*0x9fb21c651e98df25
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// SignRecord mints the subject's honestly-signed view record at the given
// tick: hop 0, fresh epoch, valid signature.
func SignRecord(keySeed uint64, id graph.NodeID, epoch int64) Record {
	return Record{ID: id, Epoch: epoch, Sig: sigOver(keySeed, id, epoch)}
}

// VerifyRecord checks the record's signature against the subject's
// derived key. Passing means "only r.ID could have produced Sig over
// (r.ID, r.Epoch)" — Hop is outside the signature by design.
func VerifyRecord(keySeed uint64, r Record) bool {
	return r.Sig == sigOver(keySeed, r.ID, r.Epoch)
}

// Wire-format limits. The codec rejects exchanges past MaxWireRecords
// (an exchange legitimately carries at most a view's worth of records)
// and clamps hops to the uint16 it ships them in.
const (
	MaxWireRecords = 128
	MaxWireHop     = 1<<16 - 1

	recordWireVersion = 1
	recordWireSize    = 8 + 2 + 8 + 8 // id + hop + epoch + sig
)

// EncodeRecords renders a record batch in its canonical wire form:
// a version byte, a uint16 count, then fixed-width little-endian records.
// It panics on batches over MaxWireRecords — honest exchange buffers are
// fanout-bounded far below it.
func EncodeRecords(recs []Record) []byte {
	if len(recs) > MaxWireRecords {
		panic(fmt.Sprintf("pex: encoding %d records exceeds the wire cap %d", len(recs), MaxWireRecords))
	}
	b := make([]byte, 3+len(recs)*recordWireSize)
	b[0] = recordWireVersion
	binary.LittleEndian.PutUint16(b[1:], uint16(len(recs)))
	off := 3
	for _, r := range recs {
		hop := r.Hop
		if hop < 0 {
			hop = 0
		}
		if hop > MaxWireHop {
			hop = MaxWireHop
		}
		binary.LittleEndian.PutUint64(b[off:], uint64(r.ID))
		binary.LittleEndian.PutUint16(b[off+8:], uint16(hop))
		binary.LittleEndian.PutUint64(b[off+10:], uint64(r.Epoch))
		binary.LittleEndian.PutUint64(b[off+18:], r.Sig)
		off += recordWireSize
	}
	return b
}

// DecodeRecords parses a wire batch, rejecting version/length/count
// mismatches. It never panics on adversarial input (FuzzViewRecord holds
// it to that), and Encode(Decode(b)) == b for every accepted b.
func DecodeRecords(b []byte) ([]Record, error) {
	if len(b) < 3 {
		return nil, fmt.Errorf("pex: record batch truncated at %d bytes", len(b))
	}
	if b[0] != recordWireVersion {
		return nil, fmt.Errorf("pex: unknown record wire version %d", b[0])
	}
	n := int(binary.LittleEndian.Uint16(b[1:]))
	if n > MaxWireRecords {
		return nil, fmt.Errorf("pex: record count %d exceeds the wire cap %d", n, MaxWireRecords)
	}
	if len(b) != 3+n*recordWireSize {
		return nil, fmt.Errorf("pex: record batch of %d is %d bytes, want %d", n, len(b), 3+n*recordWireSize)
	}
	recs := make([]Record, n)
	off := 3
	for i := range recs {
		recs[i] = Record{
			ID:    graph.NodeID(binary.LittleEndian.Uint64(b[off:])),
			Hop:   int(binary.LittleEndian.Uint16(b[off+8:])),
			Epoch: int64(binary.LittleEndian.Uint64(b[off+10:])),
			Sig:   binary.LittleEndian.Uint64(b[off+18:]),
		}
		off += recordWireSize
	}
	return recs, nil
}

// Exchange is the payload of one pex message: a push of wire-encoded
// records, optionally soliciting a pull reply. The records travel in
// canonical wire bytes (not as structs) so the codec is load-bearing on
// the runtime path — and so the poison clause must mutate them the way a
// real adversary would, by rewriting bytes.
type Exchange struct {
	// Pull solicits a reply batch (the pushpull policy's second half).
	Pull bool
	// Wire is an EncodeRecords batch.
	Wire []byte
}
