package pex

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestParsePolicy(t *testing.T) {
	for _, name := range []string{"rand", "head", "tail", "pushpull"} {
		p, err := ParsePolicy(name)
		if err != nil || string(p) != name {
			t.Fatalf("ParsePolicy(%q) = %q, %v", name, p, err)
		}
	}
	if _, err := ParsePolicy("roundrobin"); err == nil {
		t.Fatalf("ParsePolicy accepted an unknown policy")
	}
}

func TestConfigDefaults(t *testing.T) {
	d := Config{Enabled: true}.WithDefaults()
	if d.ViewSize != 8 || d.Cadence != 4 || d.Fanout != 4 || d.Policy != PolicyPushPull ||
		d.MaxHop != 16 || d.BootstrapContacts != 2 || d.RefreshEvery != 16 || d.SampleEvery != 8 {
		t.Fatalf("unexpected defaults: %+v", d)
	}
	if d.Audit.Enabled {
		t.Fatalf("defaults enabled the audit defense")
	}
	a := Config{Enabled: true, Audit: ViewAuditConfig{Enabled: true}}.WithDefaults()
	if a.Audit.FreshFor != 64 || a.Audit.Budget != 3 {
		t.Fatalf("unexpected audit defaults: %+v", a.Audit)
	}
	// A tiny view bounds the default fanout.
	small := Config{Enabled: true, ViewSize: 2}.WithDefaults()
	if small.Fanout != 2 {
		t.Fatalf("fanout default %d not clamped to ViewSize 2", small.Fanout)
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("disabled config rejected: %v", err)
	}
	if err := (Config{Enabled: true}).Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestConfigValidateBounds(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"negative view", Config{Enabled: true, ViewSize: -1}, "ViewSize"},
		{"negative cadence", Config{Enabled: true, Cadence: -2}, "Cadence"},
		{"fanout over view", Config{Enabled: true, ViewSize: 2, Fanout: 3}, "Fanout"},
		{"negative fanout", Config{Enabled: true, Fanout: -1}, "Fanout"},
		{"bad policy", Config{Enabled: true, Policy: "newest"}, "policy"},
		{"negative maxhop", Config{Enabled: true, MaxHop: -1}, "MaxHop"},
		{"maxhop over wire", Config{Enabled: true, MaxHop: MaxWireHop + 1}, "MaxHop"},
		{"negative bootstrap", Config{Enabled: true, BootstrapContacts: -1}, "BootstrapContacts"},
		{"negative refresh", Config{Enabled: true, RefreshEvery: -1}, "RefreshEvery"},
		{"negative sample", Config{Enabled: true, SampleEvery: -4}, "SampleEvery"},
		{"negative freshfor", Config{Enabled: true, Audit: ViewAuditConfig{Enabled: true, FreshFor: -1}}, "FreshFor"},
		{"negative budget", Config{Enabled: true, Audit: ViewAuditConfig{Enabled: true, Budget: -1}}, "Budget"},
		// Messages must quote EFFECTIVE values: the defaulted config is
		// what was judged, so it is what the error describes. A Fanout of
		// 9 over an unset ViewSize is rejected against the default 8 —
		// and the message has to say 8, not the 0 the user never chose.
		{"fanout over defaulted view", Config{Enabled: true, Fanout: 9}, "Fanout 9 exceeds ViewSize 8"},
		{"fanout over explicit view", Config{Enabled: true, ViewSize: 2, Fanout: 3}, "Fanout 3 exceeds ViewSize 2"},
		{"negative view quotes value", Config{Enabled: true, ViewSize: -3}, "ViewSize -3"},
		{"negative maxhop quotes value", Config{Enabled: true, MaxHop: -2}, "MaxHop -2"},
		{"negative budget quotes value", Config{Enabled: true, Audit: ViewAuditConfig{Enabled: true, Budget: -5}}, "Budget -5"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %s", tc.name, err, tc.want)
		}
	}
}

func TestSignVerify(t *testing.T) {
	r := SignRecord(7, 3, 100)
	if !VerifyRecord(7, r) {
		t.Fatalf("honest record failed verification")
	}
	forged := r
	forged.Epoch = 200
	if VerifyRecord(7, forged) {
		t.Fatalf("epoch forgery verified")
	}
	stolen := r
	stolen.ID = 4
	if VerifyRecord(7, stolen) {
		t.Fatalf("identity forgery verified")
	}
	if VerifyRecord(8, r) {
		t.Fatalf("record verified under the wrong ceremony seed")
	}
	// Hop is outside the signature by design: aging must not invalidate.
	aged := r
	aged.Hop = 12
	if !VerifyRecord(7, aged) {
		t.Fatalf("hop aging broke verification")
	}
}

func TestWireRoundTrip(t *testing.T) {
	recs := []Record{
		SignRecord(1, 5, 10),
		{ID: -3, Hop: 7, Epoch: -1, Sig: 0xdeadbeef},
		{ID: 9, Hop: MaxWireHop, Epoch: 1 << 40, Sig: 1},
	}
	b := EncodeRecords(recs)
	got, err := DecodeRecords(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip changed records:\n got %+v\nwant %+v", got, recs)
	}
	if b2 := EncodeRecords(got); !reflect.DeepEqual(b2, b) {
		t.Fatalf("re-encode is not canonical")
	}
	if empty, err := DecodeRecords(EncodeRecords(nil)); err != nil || len(empty) != 0 {
		t.Fatalf("empty batch round trip: %v, %v", empty, err)
	}
}

func TestWireRejects(t *testing.T) {
	good := EncodeRecords([]Record{SignRecord(1, 2, 3)})
	cases := map[string][]byte{
		"empty":          {},
		"short header":   good[:2],
		"bad version":    append([]byte{9}, good[1:]...),
		"truncated body": good[:len(good)-1],
		"padded body":    append(append([]byte{}, good...), 0),
		"count lies":     {recordWireVersion, 2, 0},
	}
	for name, b := range cases {
		if _, err := DecodeRecords(b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Over-cap counts are rejected even when the length would match.
	big := make([]byte, 3+(MaxWireRecords+1)*recordWireSize)
	big[0] = recordWireVersion
	big[1] = byte((MaxWireRecords + 1) & 0xff)
	big[2] = byte((MaxWireRecords + 1) >> 8)
	if _, err := DecodeRecords(big); err == nil {
		t.Errorf("over-cap batch accepted")
	}
}

func TestEncodePanicsOverCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("EncodeRecords accepted an over-cap batch")
		}
	}()
	EncodeRecords(make([]Record, MaxWireRecords+1))
}

func view(t *testing.T, cap int, recs ...Record) *View {
	t.Helper()
	v := NewView(cap)
	for _, r := range recs {
		v.Merge(Entry{Rec: r})
	}
	return v
}

func TestViewMerge(t *testing.T) {
	v := view(t, 3, Record{ID: 1, Hop: 2, Epoch: 10}, Record{ID: 2, Hop: 1, Epoch: 10})
	// Same subject, fresher epoch: replace.
	if ok, _ := v.Merge(Entry{Rec: Record{ID: 1, Hop: 5, Epoch: 11}}); !ok {
		t.Fatalf("fresher record rejected")
	}
	// Same subject, staler epoch: reject.
	if ok, _ := v.Merge(Entry{Rec: Record{ID: 1, Hop: 0, Epoch: 9}}); ok {
		t.Fatalf("staler record accepted")
	}
	// Same epoch, fewer hops: replace.
	if ok, _ := v.Merge(Entry{Rec: Record{ID: 1, Hop: 1, Epoch: 11}}); !ok {
		t.Fatalf("lower-hop record rejected")
	}
	// Fill, then evict oldest (highest hop).
	v.Merge(Entry{Rec: Record{ID: 3, Hop: 9, Epoch: 10}})
	ok, evicted := v.Merge(Entry{Rec: Record{ID: 4, Hop: 0, Epoch: 12}})
	if !ok || evicted == nil || evicted.ID != 3 {
		t.Fatalf("expected eviction of oldest (3), got ok=%v evicted=%+v", ok, evicted)
	}
	// A newcomer older than everything held bounces off a full view.
	if ok, _ := v.Merge(Entry{Rec: Record{ID: 5, Hop: 99, Epoch: 1}}); ok {
		t.Fatalf("full view accepted the oldest record")
	}
	if got := v.Members(); !reflect.DeepEqual(got, []graph.NodeID{1, 2, 4}) {
		t.Fatalf("members = %v", got)
	}
}

func TestViewAgeDecay(t *testing.T) {
	v := view(t, 4, Record{ID: 1, Hop: 0}, Record{ID: 2, Hop: 3})
	if dropped := v.Age(3); len(dropped) != 1 || dropped[0].ID != 2 {
		t.Fatalf("Age dropped %+v", dropped)
	}
	if v.Len() != 1 || !v.Contains(1) || v.Entries()[0].Rec.Hop != 1 {
		t.Fatalf("view after aging: %+v", v.Entries())
	}
}

func TestViewRemoveVia(t *testing.T) {
	v := NewView(4)
	v.Merge(Entry{Rec: Record{ID: 1}, Via: 9})
	v.Merge(Entry{Rec: Record{ID: 2}, Via: 5})
	v.Merge(Entry{Rec: Record{ID: 9, Hop: 1}, Via: 3})
	dropped := v.RemoveVia(9)
	// Both 9's contribution (record of 1) and 9's own record go.
	if len(dropped) != 2 || v.Contains(1) || v.Contains(9) || !v.Contains(2) {
		t.Fatalf("RemoveVia(9): dropped %+v, members %v", dropped, v.Members())
	}
}

func TestSelectionPolicies(t *testing.T) {
	recs := []Record{
		{ID: 10, Hop: 0}, {ID: 11, Hop: 2}, {ID: 12, Hop: 5}, {ID: 13, Hop: 9},
	}
	v := view(t, 8, recs...)
	if id, ok := v.SelectPartner(rng.New(1), PolicyHead, nil); !ok || id != 10 {
		t.Fatalf("head partner = %d", id)
	}
	if id, ok := v.SelectPartner(rng.New(1), PolicyTail, nil); !ok || id != 13 {
		t.Fatalf("tail partner = %d", id)
	}
	if _, ok := v.SelectPartner(rng.New(1), PolicyRand, func(graph.NodeID) bool { return false }); ok {
		t.Fatalf("partner found with nothing eligible")
	}
	// Eligibility filters before the policy applies.
	if id, ok := v.SelectPartner(rng.New(1), PolicyHead, func(id graph.NodeID) bool { return id != 10 }); !ok || id != 11 {
		t.Fatalf("filtered head partner = %d", id)
	}
	if got := v.SelectRecords(rng.New(1), PolicyHead, 2, 16, 0); len(got) != 2 || got[0].ID != 10 || got[1].ID != 11 {
		t.Fatalf("head records = %+v", got)
	}
	if got := v.SelectRecords(rng.New(1), PolicyTail, 2, 16, 0); len(got) != 2 || got[0].ID != 12 || got[1].ID != 13 {
		t.Fatalf("tail records = %+v", got)
	}
	// Only records with hop strictly below maxHop survive the transfer
	// increment; skip drops the partner's own record. Of {10, 11, 12, 13}
	// that leaves just 11 (10 is skipped, 12 and 13 are at/past hop 5).
	if got := v.SelectRecords(rng.New(1), PolicyRand, 8, 5, 10); len(got) != 1 || got[0].ID != 11 {
		t.Fatalf("filtered records = %+v", got)
	}
	// Random selection is deterministic under a fixed seed.
	a := v.SelectRecords(rng.New(7), PolicyRand, 2, 16, 0)
	b := v.SelectRecords(rng.New(7), PolicyRand, 2, 16, 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("rand selection not deterministic: %v vs %v", a, b)
	}
}

// FuzzViewRecord holds the wire codec to its contract: decoding never
// panics, and every accepted batch re-encodes to the identical bytes.
func FuzzViewRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeRecords(nil))
	f.Add(EncodeRecords([]Record{SignRecord(1, 2, 3)}))
	f.Add(EncodeRecords([]Record{
		{ID: -9, Hop: MaxWireHop, Epoch: -5, Sig: 42},
		SignRecord(0, 7, 1<<40),
	}))
	f.Fuzz(func(t *testing.T, b []byte) {
		recs, err := DecodeRecords(b)
		if err != nil {
			return
		}
		if got := EncodeRecords(recs); !reflect.DeepEqual(got, b) {
			t.Fatalf("accepted batch is not canonical:\n in  %x\n out %x", b, got)
		}
	})
}
