package pex

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Entry is one view slot: the record plus the peer it was learned from
// (0 for bootstrap/seeded entries), so a poisoned source's contributions
// can be evicted wholesale when it is convicted.
type Entry struct {
	Rec Record
	Via graph.NodeID
}

// View is one entity's bounded partial view. Entries are kept sorted by
// (hop ascending, ID ascending) so head/tail selection, eviction and
// iteration are deterministic. A view never holds its owner's own record
// and never holds two records of one subject.
type View struct {
	cap     int
	entries []Entry
}

// NewView returns an empty view bounded at cap entries.
func NewView(cap int) *View { return &View{cap: cap} }

// Len returns the number of held records.
func (v *View) Len() int { return len(v.entries) }

// Cap returns the view bound.
func (v *View) Cap() int { return v.cap }

// Contains reports whether the view holds a record of id.
func (v *View) Contains(id graph.NodeID) bool {
	for _, e := range v.entries {
		if e.Rec.ID == id {
			return true
		}
	}
	return false
}

// Entries returns the held entries in (hop, ID) order. The slice is
// shared; callers must not mutate it.
func (v *View) Entries() []Entry { return v.entries }

// Records returns copies of the held records in (hop, ID) order.
func (v *View) Records() []Record {
	out := make([]Record, len(v.entries))
	for i, e := range v.entries {
		out[i] = e.Rec
	}
	return out
}

// Members returns the held subject IDs, ascending.
func (v *View) Members() []graph.NodeID {
	out := make([]graph.NodeID, len(v.entries))
	for i, e := range v.entries {
		out[i] = e.Rec.ID
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (v *View) resort() {
	sort.Slice(v.entries, func(i, j int) bool {
		a, b := v.entries[i].Rec, v.entries[j].Rec
		if a.Hop != b.Hop {
			return a.Hop < b.Hop
		}
		return a.ID < b.ID
	})
}

// Age increments every record's hop count (one cadence round passed) and
// decays records past maxHop out of the view, returning the dropped
// records — the oldest-first forgetting that clears departed members.
func (v *View) Age(maxHop int) []Record {
	var dropped []Record
	kept := v.entries[:0]
	for i := range v.entries {
		v.entries[i].Rec.Hop++
		if v.entries[i].Rec.Hop > maxHop {
			dropped = append(dropped, v.entries[i].Rec)
		} else {
			kept = append(kept, v.entries[i])
		}
	}
	v.entries = kept
	// Uniform increment preserves the (hop, ID) order; no resort needed.
	return dropped
}

// Merge folds one accepted entry in. A record of a subject already held
// replaces the old one if it is strictly fresher (higher epoch) or
// equally fresh but fewer hops away; when the view is full, the oldest
// entry (highest hop, then highest ID) is evicted to make room — unless
// the newcomer is itself the oldest, in which case it is the one dropped.
// It reports whether the entry was folded in, and returns the evicted
// record, if any.
func (v *View) Merge(e Entry) (merged bool, evicted *Record) {
	for i := range v.entries {
		if v.entries[i].Rec.ID != e.Rec.ID {
			continue
		}
		old := v.entries[i].Rec
		if e.Rec.Epoch > old.Epoch || (e.Rec.Epoch == old.Epoch && e.Rec.Hop < old.Hop) {
			v.entries[i] = e
			v.resort()
			return true, nil
		}
		return false, nil
	}
	if len(v.entries) < v.cap {
		v.entries = append(v.entries, e)
		v.resort()
		return true, nil
	}
	// Full: evict oldest-first. Entries are sorted, so the victim is the
	// last one — unless the newcomer is older still.
	last := v.entries[len(v.entries)-1].Rec
	if e.Rec.Hop > last.Hop || (e.Rec.Hop == last.Hop && e.Rec.ID >= last.ID) {
		return false, nil
	}
	v.entries[len(v.entries)-1] = e
	v.resort()
	return true, &last
}

// Remove drops the record of id, reporting whether one was held.
func (v *View) Remove(id graph.NodeID) bool {
	for i := range v.entries {
		if v.entries[i].Rec.ID == id {
			v.entries = append(v.entries[:i], v.entries[i+1:]...)
			return true
		}
	}
	return false
}

// RemoveVia drops every entry learned from the given peer (and the
// peer's own record, however it arrived), returning the dropped records —
// the conviction-driven eviction of a poisoned source's contributions.
func (v *View) RemoveVia(peer graph.NodeID) []Record {
	var dropped []Record
	kept := v.entries[:0]
	for _, e := range v.entries {
		if e.Via == peer || e.Rec.ID == peer {
			dropped = append(dropped, e.Rec)
		} else {
			kept = append(kept, e)
		}
	}
	v.entries = kept
	return dropped
}

// SelectPartner picks this round's exchange partner among held subjects
// satisfying eligible: uniformly for rand/pushpull, freshest-first for
// head, oldest-first for tail. It returns false when no held subject is
// eligible.
func (v *View) SelectPartner(r *rng.Rand, policy Policy, eligible func(graph.NodeID) bool) (graph.NodeID, bool) {
	var pool []Entry
	for _, e := range v.entries {
		if eligible == nil || eligible(e.Rec.ID) {
			pool = append(pool, e)
		}
	}
	if len(pool) == 0 {
		return 0, false
	}
	switch policy {
	case PolicyHead:
		return pool[0].Rec.ID, true
	case PolicyTail:
		return pool[len(pool)-1].Rec.ID, true
	default: // rand, pushpull
		return pool[r.Intn(len(pool))].Rec.ID, true
	}
}

// SelectRecords picks up to fanout records to ship: records must have
// hop < maxHop (so the transfer increment keeps them within the decay
// horizon) and a subject other than skip (shipping the partner its own
// record is dead weight). Rand/pushpull draw a uniform subset; head takes
// the freshest, tail the oldest.
func (v *View) SelectRecords(r *rng.Rand, policy Policy, fanout, maxHop int, skip graph.NodeID) []Record {
	var pool []Record
	for _, e := range v.entries {
		if e.Rec.Hop < maxHop && e.Rec.ID != skip {
			pool = append(pool, e.Rec)
		}
	}
	if fanout >= len(pool) {
		return pool
	}
	switch policy {
	case PolicyHead:
		return pool[:fanout]
	case PolicyTail:
		return pool[len(pool)-fanout:]
	default: // rand, pushpull
		idx := r.Perm(len(pool))[:fanout]
		sort.Ints(idx)
		out := make([]Record, fanout)
		for i, j := range idx {
			out[i] = pool[j]
		}
		return out
	}
}
