// Package pex implements the data model of a peer-exchange (PEX)
// membership overlay: bounded partial views of signed view records that
// entities trade on a cadence, so that each entity knows only a few
// others — the paper's geography dimension made into soft state instead
// of configuration handed to the node for free.
//
// A view record is a claim "entity ID existed at tick Epoch", carrying a
// hop age (how many exchanges it has traveled/aged through) and a
// transferable signature over (ID, Epoch) that only the subject can mint.
// Views are bounded: merging dedupes by ID keeping the freshest claim,
// aging increments every hop count once per cadence, records past the hop
// horizon decay out, and over-full views evict oldest-first. Exchange
// partners and the records shipped to them are chosen by a selection
// Policy (rand / head / tail / pushpull).
//
// The package is pure data structures and policy — deterministic given an
// rng, no clocks, no I/O. The runtime that schedules exchanges, reconciles
// views into live overlay links, and defends merges against Byzantine
// record injection (the view-audit sublayer) lives in internal/node; the
// `poison` attack on the exchange traffic lives in internal/fault.
package pex

import (
	"fmt"

	"repro/internal/sim"
)

// Policy selects exchange partners and the records shipped to them.
type Policy string

// Selection policies (see SNIPPETS.md / wetware's PEX lab).
const (
	// PolicyRand picks a uniform partner and uniform records.
	PolicyRand Policy = "rand"
	// PolicyHead prefers the freshest (lowest hop age) partner and records.
	PolicyHead Policy = "head"
	// PolicyTail prefers the oldest (highest hop age) partner and records —
	// the anti-entropy flavor: push what is most at risk of decaying out.
	PolicyTail Policy = "tail"
	// PolicyPushPull picks uniformly like rand, but the partner answers
	// with records of its own, halving convergence time per exchange.
	PolicyPushPull Policy = "pushpull"
)

// ParsePolicy reads a policy name (the cmd/ddsim -pex-policy values).
func ParsePolicy(s string) (Policy, error) {
	switch p := Policy(s); p {
	case PolicyRand, PolicyHead, PolicyTail, PolicyPushPull:
		return p, nil
	}
	return "", fmt.Errorf("pex: unknown policy %q (want rand, head, tail, or pushpull)", s)
}

// ViewAuditConfig parameterizes the view-audit defense the runtime's pex
// sublayer applies to every merged record. With Enabled false, a view
// accepts whatever an exchange carries — the attack surface E27 measures.
type ViewAuditConfig struct {
	// Enabled turns the defense on: record signatures are verified,
	// freshness and hop sanity are enforced, and per-peer injection
	// budgets feed the auth sublayer's quarantine machinery.
	Enabled bool
	// KeySeed is the signing ceremony's seed (the pex analogue of
	// AuditConfig.SigSeed). Zero is a valid seed.
	KeySeed uint64
	// FreshFor is the freshness window in ticks: a record whose Epoch is
	// older than this on arrival is rejected (without a strike — honest
	// peers may hold records up to the decay horizon). Catches dead-record
	// replays that keep their genuine old signature. Default 64.
	FreshFor sim.Time
	// Budget is the number of provably-bad records (invalid signature,
	// impossible hop, duplicate within one exchange, undecodable wire
	// bytes) a peer may send before the link is quarantined. Default 3.
	Budget int
}

// Config parameterizes a PEX overlay (node.Config.Pex).
type Config struct {
	// Enabled turns the pex sublayer on. The overlay given to
	// node.NewWorld must then implement topology.LinkController, because
	// the sublayer owns the edges.
	Enabled bool
	// ViewSize bounds each entity's partial view. Default 8, minimum 1.
	ViewSize int
	// Cadence is the tick interval between an entity's exchange rounds.
	// Default 4, must be positive.
	Cadence sim.Time
	// Fanout is the number of records shipped per exchange (the entity's
	// own fresh record included). Default min(4, ViewSize); must stay
	// within [1, ViewSize].
	Fanout int
	// Policy selects partners and records. Default pushpull.
	Policy Policy
	// MaxHop is the decay horizon: aging past it drops a record, and an
	// arriving record older than it is rejected. Default 16, minimum 1.
	MaxHop int
	// BootstrapContacts is how many present entities a joiner without a
	// seeded view is introduced to (records minted fresh, links placed).
	// Default 2, minimum 1.
	BootstrapContacts int
	// RefreshEvery re-contacts the bootstrap service for ONE fresh
	// introduction every this many cadence rounds. Hop-ordered eviction
	// keeps the nearest records, so views slowly specialize toward their
	// own neighborhood; without an outside contact now and then, two
	// halves of a large overlay can forget each other completely — an
	// absorbing partition no exchange can repair, because exchanges only
	// reach view members. The refresh bounds a partition's lifetime the
	// same way real overlays do: by never fully letting go of the
	// introduction service. Default 16 rounds, minimum 1.
	RefreshEvery int
	// SampleEvery is the tick interval of the overlay metrics sampler
	// (connectivity, sybil fraction, clustering, in-degree). Default 8.
	SampleEvery sim.Time
	// Audit is the view-audit defense (off by default).
	Audit ViewAuditConfig
}

// WithDefaults fills the zero knobs of an enabled config.
func (c Config) WithDefaults() Config {
	if !c.Enabled {
		return c
	}
	if c.ViewSize == 0 {
		c.ViewSize = 8
	}
	if c.Cadence == 0 {
		c.Cadence = 4
	}
	if c.Fanout == 0 {
		c.Fanout = 4
		if c.Fanout > c.ViewSize {
			c.Fanout = c.ViewSize
		}
	}
	if c.Policy == "" {
		c.Policy = PolicyPushPull
	}
	if c.MaxHop == 0 {
		c.MaxHop = 16
	}
	if c.BootstrapContacts == 0 {
		c.BootstrapContacts = 2
	}
	if c.RefreshEvery == 0 {
		c.RefreshEvery = 16
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 8
	}
	if c.Audit.Enabled {
		if c.Audit.FreshFor == 0 {
			c.Audit.FreshFor = 64
		}
		if c.Audit.Budget == 0 {
			c.Audit.Budget = 3
		}
	}
	return c
}

// Validate reports the first configuration error, or nil. A disabled
// config is always valid; zero knobs of an enabled one mean their
// defaults (see WithDefaults). Validation judges — and its messages
// report — the EFFECTIVE values after defaulting: an error that quoted
// the literal zero a user left unset while rejecting the default it
// became would be describing a config nobody wrote.
func (c Config) Validate() error {
	if !c.Enabled {
		return nil
	}
	d := c.WithDefaults()
	if d.ViewSize < 1 {
		return fmt.Errorf("pex: ViewSize %d below the 1-record minimum", d.ViewSize)
	}
	if d.Cadence <= 0 {
		return fmt.Errorf("pex: Cadence %d must be positive", d.Cadence)
	}
	if d.Fanout < 1 {
		return fmt.Errorf("pex: Fanout %d below the 1-record minimum", d.Fanout)
	}
	if d.Fanout > d.ViewSize {
		return fmt.Errorf("pex: Fanout %d exceeds ViewSize %d", d.Fanout, d.ViewSize)
	}
	if _, err := ParsePolicy(string(d.Policy)); err != nil {
		return err
	}
	if d.MaxHop < 1 {
		return fmt.Errorf("pex: MaxHop %d below the 1-hop minimum", d.MaxHop)
	}
	if d.MaxHop > MaxWireHop {
		return fmt.Errorf("pex: MaxHop %d exceeds the wire ceiling %d", d.MaxHop, MaxWireHop)
	}
	if d.BootstrapContacts < 1 {
		return fmt.Errorf("pex: BootstrapContacts %d below the 1-contact minimum", d.BootstrapContacts)
	}
	if d.RefreshEvery < 1 {
		return fmt.Errorf("pex: RefreshEvery %d below the 1-round minimum", d.RefreshEvery)
	}
	if d.SampleEvery <= 0 {
		return fmt.Errorf("pex: SampleEvery %d must be positive", d.SampleEvery)
	}
	if d.Audit.Enabled {
		if d.Audit.FreshFor <= 0 {
			return fmt.Errorf("pex: view-audit FreshFor %d must be positive", d.Audit.FreshFor)
		}
		if d.Audit.Budget < 1 {
			return fmt.Errorf("pex: view-audit Budget %d below the 1-strike minimum", d.Audit.Budget)
		}
	}
	return nil
}
