package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 1000", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("seed 0 produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling streams start identically")
	}
	// Splitting with the same label from identically-advanced parents must
	// be reproducible.
	p1, p2 := New(9), New(9)
	if p1.Split(5).Uint64() != p2.Split(5).Uint64() {
		t.Fatal("Split is not deterministic")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < draws/10-1000 || c > draws/10+1000 {
			t.Errorf("Intn(10) value %d drawn %d times, want ~%d", v, c, draws/10)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	if err := quick.Check(func(_ int) bool {
		f := r.Float64()
		return f >= 0 && f < 1
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	const rate, n = 2.0, 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(rate)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Errorf("Exp(%v) mean = %v, want ~%v", rate, mean, 1/rate)
	}
}

func TestParetoTail(t *testing.T) {
	r := New(17)
	const xm, alpha = 1.0, 2.0
	over := 0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Pareto(xm, alpha)
		if v < xm {
			t.Fatalf("Pareto sample %v below scale %v", v, xm)
		}
		if v > 10 {
			over++
		}
	}
	// P(X > 10) = (xm/10)^alpha = 0.01.
	frac := float64(over) / n
	if frac < 0.005 || frac > 0.02 {
		t.Errorf("Pareto tail fraction = %v, want ~0.01", frac)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(19)
	const mean, sd, n = 5.0, 2.0, 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(mean, sd)
		sum += v
		sumSq += v * v
	}
	m := sum / n
	variance := sumSq/n - m*m
	if math.Abs(m-mean) > 0.05 {
		t.Errorf("Norm mean = %v, want ~%v", m, mean)
	}
	if math.Abs(math.Sqrt(variance)-sd) > 0.05 {
		t.Errorf("Norm stddev = %v, want ~%v", math.Sqrt(variance), sd)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(29)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("Shuffle changed multiset: %v", s)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(31)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf rank %d out of range", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("Zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
	if counts[0] <= 5*counts[99] {
		t.Errorf("Zipf tail too heavy: rank0=%d rank99=%d", counts[0], counts[99])
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(r, 0, 1) did not panic")
		}
	}()
	NewZipf(New(1), 0, 1)
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestParetoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pareto(0,1) did not panic")
		}
	}()
	New(1).Pareto(0, 1)
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Intn(1000)
	}
}
