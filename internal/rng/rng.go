// Package rng provides a small, deterministic pseudo-random number
// generator and the distributions the simulator needs.
//
// The simulator must be reproducible: a seeded run has to produce the
// identical event trace on every machine. math/rand's global functions are
// not seedable per-component and math/rand/v2 sources are not stable across
// Go versions by contract, so the package implements xoshiro256** directly.
// Generators are cheap value-like objects; independent streams are derived
// with Split so that adding a consumer of randomness in one component does
// not perturb the stream seen by another.
package rng

import "math"

// Rand is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64, which guarantees
// a well-mixed non-zero internal state for any seed, including 0.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator stream. The derived stream is a
// deterministic function of the parent state and label, and advancing the
// child never affects the parent beyond the single Uint64 drawn here.
func (r *Rand) Split(label uint64) *Rand {
	return New(r.Uint64() ^ (label * 0xd1342543de82ef95))
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded rejection sampling.
	un := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, un)
		if lo >= un || lo >= -un%un {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	x0, x1 := x&mask, x>>32
	y0, y1 := y&mask, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return
}

// Float64 returns a uniformly random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Exp returns an exponentially distributed sample with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *Rand) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	u := r.Float64()
	// 1-u is in (0, 1], so the log is finite.
	return -math.Log(1-u) / rate
}

// Pareto returns a Pareto(xm, alpha) sample: heavy-tailed session lengths
// observed in peer-to-peer systems. It panics if xm <= 0 or alpha <= 0.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("rng: Pareto with non-positive parameter")
	}
	u := r.Float64()
	return xm / math.Pow(1-u, 1/alpha)
}

// Norm returns a normally distributed sample with the given mean and
// standard deviation, via the Box-Muller transform.
func (r *Rand) Norm(mean, stddev float64) float64 {
	u1 := 1 - r.Float64() // (0, 1]
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^s, using inverse-CDF over a precomputed table.
type Zipf struct {
	r   *Rand
	cdf []float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent s > 0.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 || s <= 0 {
		panic("rng: NewZipf with non-positive parameter")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{r: r, cdf: cdf}
}

// Next returns the next Zipf-distributed rank in [0, n).
func (z *Zipf) Next() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
