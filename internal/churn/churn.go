// Package churn generates the membership dynamics of a run: who joins and
// leaves, when. It realizes the size dimension of the paper's
// classification — the infinite arrival models M^b (known concurrency
// bound), M^n (finite but unknown) and M^infinity (unbounded concurrency)
// — as lazy, deterministic event streams the simulator consumes.
//
// A Generator is an infinite (or quiescing) stream; callers bound it with
// a horizon. Arrival processes are Poisson; session lengths are
// exponential or Pareto (the standard fits to measured peer-to-peer
// session traces). Acceleration makes concurrency grow without bound,
// producing M^infinity runs on any finite horizon prefix.
package churn

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Time is virtual time in simulator ticks (aliases int64, matching
// core.Time).
type Time = int64

// Event is one membership change.
type Event struct {
	At   Time
	Join bool
	Node graph.NodeID
}

func (e Event) String() string {
	verb := "leave"
	if e.Join {
		verb = "join"
	}
	return fmt.Sprintf("t=%d %s %d", e.At, verb, e.Node)
}

// SessionDist samples a session length in ticks.
type SessionDist func(r *rng.Rand) Time

// ExpSessions returns exponentially distributed session lengths with the
// given mean (in ticks).
func ExpSessions(mean float64) SessionDist {
	if mean <= 0 {
		panic("churn: ExpSessions with non-positive mean")
	}
	return func(r *rng.Rand) Time { return ceilTime(r.Exp(1 / mean)) }
}

// ParetoSessions returns Pareto(xm, alpha) session lengths: most sessions
// short, a heavy tail of long-lived members.
func ParetoSessions(xm, alpha float64) SessionDist {
	return func(r *rng.Rand) Time { return ceilTime(r.Pareto(xm, alpha)) }
}

// FixedSessions returns constant session lengths.
func FixedSessions(d Time) SessionDist {
	if d <= 0 {
		panic("churn: FixedSessions with non-positive duration")
	}
	return func(*rng.Rand) Time { return d }
}

func ceilTime(f float64) Time {
	t := Time(math.Ceil(f))
	if t < 1 {
		t = 1
	}
	return t
}

// Config parameterizes a Generator. The zero value is not valid: Session
// must be set whenever churn is possible.
type Config struct {
	// InitialPopulation entities join at t=0.
	InitialPopulation int
	// ArrivalRate is the expected number of arrivals per tick (Poisson).
	// 0 means no arrivals after the initial population.
	ArrivalRate float64
	// Session samples how long an entity stays. Entities of the initial
	// population draw sessions too, unless Immortal is set.
	Session SessionDist
	// Immortal keeps the initial population in the system forever
	// (a "stable core"); only late arrivals churn.
	Immortal bool
	// MaxConcurrent caps simultaneous membership (the b of M^b). Arrivals
	// drawn while at capacity are deferred until a departure frees a slot.
	// 0 means no cap.
	MaxConcurrent int
	// DoubleEvery makes the arrival rate double every DoubleEvery ticks:
	// concurrency then grows without bound (M^infinity runs). 0 disables.
	DoubleEvery Time
	// QuiesceAt suppresses every event at or after this time: joins stop
	// and present entities stay forever, yielding an eventually-stable
	// run. 0 means never quiesce.
	QuiesceAt Time
	// RejoinProb makes each departing entity return later under the SAME
	// identity with this probability — churners rather than one-shot
	// visitors, the membership shape durable-identity experiments need.
	// Requires Downtime. Returning entities bypass MaxConcurrent (the
	// member reclaims its place) and draw a fresh session on return, so
	// an entity may cycle repeatedly. 0 disables.
	RejoinProb float64
	// Downtime samples how long a rejoining entity stays out between its
	// leave and its return.
	Downtime SessionDist
}

// Generator lazily produces the membership events of one run.
// Construct with New; a Generator is not safe for concurrent use.
type Generator struct {
	cfg    Config
	r      *rng.Rand
	nextID graph.NodeID

	departures  departureHeap
	rejoins     departureHeap // same-identity returns still pending
	nextArrival Time
	// arrCursor is the continuous-time position of the Poisson arrival
	// process. Emission times are the ceiling of the cursor, but the
	// cursor itself advances by exact exponential gaps so that rounding
	// does not bias the long-run arrival rate.
	arrCursor float64
	present   int

	initial []Event // initial population joins, drained first
	pending []Event // deferred events (same-tick ordering)
}

type departure struct {
	at   Time
	node graph.NodeID
}

type departureHeap []departure

func (h departureHeap) Len() int { return len(h) }
func (h departureHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].node < h[j].node
}
func (h departureHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *departureHeap) Push(x any)   { *h = append(*h, x.(departure)) }
func (h *departureHeap) Pop() any {
	old := *h
	n := len(old)
	d := old[n-1]
	*h = old[:n-1]
	return d
}

// New returns a generator for the configured churn process, deterministic
// in seed.
func New(seed uint64, cfg Config) *Generator {
	if cfg.Session == nil && (cfg.InitialPopulation > 0 && !cfg.Immortal || cfg.ArrivalRate > 0) {
		panic("churn: Config.Session required when entities can churn")
	}
	if cfg.RejoinProb < 0 || cfg.RejoinProb > 1 || math.IsNaN(cfg.RejoinProb) {
		panic(fmt.Sprintf("churn: Config.RejoinProb %v outside [0, 1]", cfg.RejoinProb))
	}
	if cfg.RejoinProb > 0 && cfg.Downtime == nil {
		panic("churn: Config.Downtime required when RejoinProb > 0")
	}
	g := &Generator{cfg: cfg, r: rng.New(seed), nextArrival: -1}
	for i := 0; i < cfg.InitialPopulation; i++ {
		id := g.allocID()
		g.initial = append(g.initial, Event{At: 0, Join: true, Node: id})
		g.present++
		if !cfg.Immortal {
			heap.Push(&g.departures, departure{at: cfg.Session(g.r), node: id})
		}
	}
	if cfg.ArrivalRate > 0 {
		g.nextArrival = g.drawArrival(0)
	}
	return g
}

func (g *Generator) allocID() graph.NodeID {
	g.nextID++
	return g.nextID
}

// rateAt returns the arrival rate in effect at time t (doubling schedule).
func (g *Generator) rateAt(t Time) float64 {
	rate := g.cfg.ArrivalRate
	if g.cfg.DoubleEvery > 0 && t > 0 {
		rate *= math.Pow(2, float64(t/g.cfg.DoubleEvery))
	}
	return rate
}

// drawArrival advances the continuous arrival cursor past t and returns
// the next arrival tick.
func (g *Generator) drawArrival(t Time) Time {
	rate := g.rateAt(t)
	if rate <= 0 {
		return -1
	}
	g.arrCursor += g.r.Exp(rate)
	at := Time(math.Ceil(g.arrCursor))
	// Emission times must stay monotone even when the cursor trails the
	// clock (e.g. after an M^b deferral); the cursor itself is never
	// lifted, so rounding cannot bias the long-run rate.
	if at < t {
		at = t
	}
	return at
}

// Next returns the next membership event. ok is false when the stream is
// exhausted (quiesced with no pending departures, or no churn configured).
func (g *Generator) Next() (Event, bool) {
	ev, ok := g.rawNext()
	if !ok {
		return Event{}, false
	}
	if g.cfg.QuiesceAt > 0 && ev.At >= g.cfg.QuiesceAt {
		// Events are emitted in time order, so this one and everything
		// after fall in the quiescent era: joins stop and members stay.
		// Drain the stream.
		g.initial = nil
		g.pending = nil
		g.departures = nil
		g.rejoins = nil
		g.nextArrival = -1
		return Event{}, false
	}
	return ev, true
}

func (g *Generator) rawNext() (Event, bool) {
	if len(g.initial) > 0 {
		ev := g.initial[0]
		g.initial = g.initial[1:]
		return ev, true
	}
	if len(g.pending) > 0 {
		ev := g.pending[0]
		g.pending = g.pending[1:]
		return ev, true
	}
	hasDep := g.departures.Len() > 0
	hasRej := g.rejoins.Len() > 0
	hasArr := g.nextArrival >= 0
	var depAt, rejAt Time
	if hasDep {
		depAt = g.departures[0].at
	}
	if hasRej {
		rejAt = g.rejoins[0].at
	}
	switch {
	case !hasDep && !hasRej && !hasArr:
		return Event{}, false
	case hasDep && (!hasRej || depAt <= rejAt) && (!hasArr || depAt <= g.nextArrival):
		d := g.popDeparture()
		return Event{At: d.at, Join: false, Node: d.node}, true
	case hasRej && (!hasArr || rejAt <= g.nextArrival):
		// A churner returns under its old identity and draws a fresh
		// session, so it may cycle again.
		d := heap.Pop(&g.rejoins).(departure)
		g.present++
		if g.cfg.Session != nil {
			heap.Push(&g.departures, departure{at: d.at + g.cfg.Session(g.r), node: d.node})
		}
		return Event{At: d.at, Join: true, Node: d.node}, true
	default:
		t := g.nextArrival
		if g.cfg.MaxConcurrent > 0 && g.present >= g.cfg.MaxConcurrent {
			// At capacity: defer the arrival to the moment of the next
			// departure (M^b semantics: the waiting entity takes the slot).
			if !hasDep {
				// Nobody ever leaves: the arrival can never happen.
				g.nextArrival = -1
				return g.rawNext()
			}
			d := g.popDeparture()
			g.nextArrival = d.at // join follows at the same tick
			return Event{At: d.at, Join: false, Node: d.node}, true
		}
		id := g.allocID()
		g.present++
		if g.cfg.Session != nil {
			heap.Push(&g.departures, departure{at: t + g.cfg.Session(g.r), node: id})
		}
		g.nextArrival = g.drawArrival(t)
		return Event{At: t, Join: true, Node: id}, true
	}
}

// popDeparture emits the earliest departure, flipping the rejoin coin:
// a returning churner is queued on the rejoins heap under the same
// identity, Downtime ticks out.
func (g *Generator) popDeparture() departure {
	d := heap.Pop(&g.departures).(departure)
	g.present--
	if g.cfg.RejoinProb > 0 && g.r.Bool(g.cfg.RejoinProb) {
		heap.Push(&g.rejoins, departure{at: d.at + g.cfg.Downtime(g.r), node: d.node})
	}
	return d
}

// Replay returns a generator that replays a fixed membership event
// sequence — recorded traces or hand-written scripts driven through the
// same ApplyChurn machinery as synthetic models. Events must be in
// non-decreasing time order; Replay panics otherwise.
func Replay(events []Event) *Generator {
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			panic(fmt.Sprintf("churn: Replay events out of order at %d", i))
		}
	}
	cp := make([]Event, len(events))
	copy(cp, events)
	return &Generator{pending: cp, nextArrival: -1}
}

// Collect drains events with At <= horizon into a slice. The generator
// can be drained further afterwards.
func (g *Generator) Collect(horizon Time) []Event {
	var out []Event
	for {
		ev, ok := g.Next()
		if !ok {
			return out
		}
		if ev.At > horizon {
			// Push back for a later Collect call.
			g.pending = append([]Event{ev}, g.pending...)
			return out
		}
		out = append(out, ev)
	}
}
