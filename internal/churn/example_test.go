package churn_test

import (
	"fmt"

	"repro/internal/churn"
)

// An M^b stream: infinitely many arrivals, concurrency capped at b.
func Example() {
	gen := churn.New(1, churn.Config{
		InitialPopulation: 5,
		ArrivalRate:       1,
		Session:           churn.ExpSessions(20),
		MaxConcurrent:     5, // the b of M^b
	})
	events := gen.Collect(400)

	cur, peak, arrivals := 0, 0, 0
	for _, ev := range events {
		if ev.Join {
			cur++
			arrivals++
		} else {
			cur--
		}
		if cur > peak {
			peak = cur
		}
	}
	fmt.Println("peak concurrency:", peak)
	fmt.Println("many more arrivals than the cap:", arrivals > 5*5)
	// Output:
	// peak concurrency: 5
	// many more arrivals than the cap: true
}
