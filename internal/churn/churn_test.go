package churn

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func drain(g *Generator, horizon Time) []Event {
	var out []Event
	for {
		ev, ok := g.Next()
		if !ok || ev.At > horizon {
			return out
		}
		out = append(out, ev)
	}
}

func concurrencyProfile(events []Event) (max int, byNode map[graph.NodeID]int) {
	cur := 0
	byNode = make(map[graph.NodeID]int)
	for _, ev := range events {
		if ev.Join {
			cur++
			byNode[ev.Node]++
		} else {
			cur--
		}
		if cur > max {
			max = cur
		}
	}
	return max, byNode
}

func TestStaticPopulation(t *testing.T) {
	g := New(1, Config{InitialPopulation: 10, Immortal: true})
	evs := drain(g, 1000)
	if len(evs) != 10 {
		t.Fatalf("static config produced %d events, want 10 joins", len(evs))
	}
	for _, ev := range evs {
		if !ev.Join || ev.At != 0 {
			t.Fatalf("unexpected event %v", ev)
		}
	}
}

func TestEventsTimeOrdered(t *testing.T) {
	g := New(2, Config{InitialPopulation: 20, ArrivalRate: 0.5, Session: ExpSessions(30)})
	evs := drain(g, 500)
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("events out of order: %v then %v", evs[i-1], evs[i])
		}
	}
	if len(evs) < 100 {
		t.Fatalf("expected substantial churn, got %d events", len(evs))
	}
}

func TestDeterministic(t *testing.T) {
	cfg := Config{InitialPopulation: 5, ArrivalRate: 0.3, Session: ParetoSessions(5, 1.5)}
	a := drain(New(7, cfg), 300)
	b := drain(New(7, cfg), 300)
	if len(a) != len(b) {
		t.Fatalf("replays differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replays diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestNodeIDsUnique(t *testing.T) {
	g := New(3, Config{InitialPopulation: 5, ArrivalRate: 1, Session: ExpSessions(10)})
	evs := drain(g, 200)
	_, byNode := concurrencyProfile(evs)
	for id, joins := range byNode {
		if joins != 1 {
			t.Fatalf("node %d joined %d times; IDs must be fresh per arrival", id, joins)
		}
	}
}

func TestLeaveMatchesJoin(t *testing.T) {
	g := New(4, Config{InitialPopulation: 8, ArrivalRate: 0.5, Session: ExpSessions(20)})
	evs := drain(g, 400)
	joined := map[graph.NodeID]bool{}
	for _, ev := range evs {
		if ev.Join {
			joined[ev.Node] = true
		} else {
			if !joined[ev.Node] {
				t.Fatalf("node %d left without joining", ev.Node)
			}
			joined[ev.Node] = false
		}
	}
}

func TestBoundedConcurrencyMb(t *testing.T) {
	const b = 10
	g := New(5, Config{InitialPopulation: b, ArrivalRate: 2, Session: ExpSessions(50), MaxConcurrent: b})
	evs := drain(g, 1000)
	max, byNode := concurrencyProfile(evs)
	if max > b {
		t.Fatalf("M^b generator exceeded bound: concurrency %d > b=%d", max, b)
	}
	if len(byNode) <= b {
		t.Fatalf("M^b run saw only %d distinct entities; infinite arrival expected", len(byNode))
	}
}

func TestImmortalCore(t *testing.T) {
	g := New(6, Config{InitialPopulation: 4, Immortal: true, ArrivalRate: 1, Session: ExpSessions(5)})
	evs := drain(g, 500)
	for _, ev := range evs {
		if !ev.Join && ev.Node <= 4 {
			t.Fatalf("immortal core member %d left", ev.Node)
		}
	}
}

func TestQuiescence(t *testing.T) {
	const gst = 200
	g := New(7, Config{InitialPopulation: 10, ArrivalRate: 1, Session: ExpSessions(10), QuiesceAt: gst})
	evs := drain(g, 10000)
	if len(evs) == 0 {
		t.Fatal("no events before quiescence")
	}
	for _, ev := range evs {
		if ev.At >= gst {
			t.Fatalf("event %v at or after QuiesceAt=%d", ev, gst)
		}
	}
	// Stream must be exhausted, not merely beyond the horizon.
	if ev, ok := g.Next(); ok {
		t.Fatalf("event %v after quiescence", ev)
	}
}

func TestUnboundedGrowth(t *testing.T) {
	// M^infinity flavor: doubling arrival rate with long sessions makes
	// concurrency grow without bound over the horizon.
	g := New(8, Config{InitialPopulation: 2, ArrivalRate: 0.05, Session: FixedSessions(100000), DoubleEvery: 100})
	evs := drain(g, 1000)
	maxFirst, _ := concurrencyProfile(evs[:len(evs)/2])
	maxAll, _ := concurrencyProfile(evs)
	if maxAll <= maxFirst {
		t.Fatalf("concurrency not growing: first half %d, whole run %d", maxFirst, maxAll)
	}
	if maxAll < 20 {
		t.Fatalf("M^inf run reached only concurrency %d", maxAll)
	}
}

func TestCollectResumable(t *testing.T) {
	cfg := Config{InitialPopulation: 5, ArrivalRate: 0.5, Session: ExpSessions(20)}
	g := New(9, cfg)
	first := g.Collect(100)
	second := g.Collect(200)
	whole := drain(New(9, cfg), 200)
	got := append(append([]Event{}, first...), second...)
	if len(got) != len(whole) {
		t.Fatalf("split Collect produced %d events, contiguous drain %d", len(got), len(whole))
	}
	for i := range whole {
		if got[i] != whole[i] {
			t.Fatalf("split Collect diverges at %d: %v vs %v", i, got[i], whole[i])
		}
	}
	for _, ev := range first {
		if ev.At > 100 {
			t.Fatalf("Collect(100) returned event %v", ev)
		}
	}
}

func TestSessionDistPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"ExpSessions(0)":   func() { ExpSessions(0) },
		"FixedSessions(0)": func() { FixedSessions(0) },
		"config":           func() { New(1, Config{InitialPopulation: 1, ArrivalRate: 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestEventString(t *testing.T) {
	j := Event{At: 3, Join: true, Node: 9}
	l := Event{At: 4, Join: false, Node: 9}
	if j.String() == l.String() {
		t.Error("join and leave events render identically")
	}
}

func TestExhaustionWithoutChurn(t *testing.T) {
	g := New(1, Config{InitialPopulation: 3, Immortal: true})
	drain(g, 10)
	if _, ok := g.Next(); ok {
		t.Fatal("immortal static stream should exhaust after initial joins")
	}
}

func TestMeanConcurrencyTracksLittlesLaw(t *testing.T) {
	// Little's law: steady-state population = arrival rate x mean session.
	const rate, mean = 1.0, 50.0
	g := New(10, Config{InitialPopulation: int(rate * mean), ArrivalRate: rate, Session: ExpSessions(mean)})
	evs := drain(g, 5000)
	cur, samples, sum := 0, 0, 0
	lastT := Time(0)
	for _, ev := range evs {
		if ev.At > 1000 { // skip warmup
			sum += cur * int(ev.At-lastT)
			samples += int(ev.At - lastT)
		}
		lastT = ev.At
		if ev.Join {
			cur++
		} else {
			cur--
		}
	}
	avg := float64(sum) / float64(samples)
	if avg < 0.7*rate*mean || avg > 1.3*rate*mean {
		t.Fatalf("steady-state population %v, want ~%v", avg, rate*mean)
	}
}

func TestReplay(t *testing.T) {
	script := []Event{
		{At: 0, Join: true, Node: 1},
		{At: 0, Join: true, Node: 2},
		{At: 5, Join: false, Node: 1},
		{At: 9, Join: true, Node: 3},
	}
	g := Replay(script)
	got := drain(g, 100)
	if len(got) != len(script) {
		t.Fatalf("replayed %d events, want %d", len(got), len(script))
	}
	for i := range script {
		if got[i] != script[i] {
			t.Fatalf("event %d = %v, want %v", i, got[i], script[i])
		}
	}
	if _, ok := g.Next(); ok {
		t.Fatal("replay generator not exhausted")
	}
}

func TestReplayRejectsOutOfOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order replay did not panic")
		}
	}()
	Replay([]Event{{At: 5, Join: true, Node: 1}, {At: 3, Join: true, Node: 2}})
}

func TestReplayDoesNotAliasInput(t *testing.T) {
	script := []Event{{At: 0, Join: true, Node: 1}}
	g := Replay(script)
	script[0].Node = 99
	ev, ok := g.Next()
	if !ok || ev.Node != 1 {
		t.Fatalf("replay aliased caller's slice: %v", ev)
	}
}

// Property: for arbitrary (seeded) configurations with a cap, observed
// concurrency never exceeds the cap, events stay time-ordered, and every
// leave matches an open join.
func TestPropertyBoundedConcurrency(t *testing.T) {
	check := func(seed uint16, rawB, rawRate, rawMean uint8) bool {
		b := 1 + int(rawB)%20
		rate := 0.05 + float64(rawRate%40)/20
		mean := 5 + float64(rawMean%60)
		g := New(uint64(seed), Config{
			InitialPopulation: b,
			ArrivalRate:       rate,
			Session:           ExpSessions(mean),
			MaxConcurrent:     b,
		})
		evs := drain(g, 400)
		cur := 0
		open := map[graph.NodeID]bool{}
		last := Time(-1)
		for _, ev := range evs {
			if ev.At < last {
				return false
			}
			last = ev.At
			if ev.Join {
				if open[ev.Node] {
					return false
				}
				open[ev.Node] = true
				cur++
				if cur > b {
					return false
				}
			} else {
				if !open[ev.Node] {
					return false
				}
				delete(open, ev.Node)
				cur--
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRejoinSameIdentity: with RejoinProb set, some departures come back
// under the SAME identity after their downtime — the churn pattern the
// durable-identity mode exists for. Non-rejoin joins still use fresh IDs,
// a rejoin is never earlier than its leave plus the minimum downtime, and
// the stream stays time-ordered with leaves matching open joins.
func TestRejoinSameIdentity(t *testing.T) {
	g := New(11, Config{
		InitialPopulation: 10,
		ArrivalRate:       0.5,
		Session:           ExpSessions(20),
		RejoinProb:        0.6,
		Downtime:          FixedSessions(15),
	})
	evs := drain(g, 2000)
	rejoins := 0
	leftAt := map[graph.NodeID]Time{}
	open := map[graph.NodeID]bool{}
	last := Time(0)
	for _, ev := range evs {
		if ev.At < last {
			t.Fatalf("events out of order at %v", ev)
		}
		last = ev.At
		if ev.Join {
			if open[ev.Node] {
				t.Fatalf("node %d joined while present", ev.Node)
			}
			if at, seen := leftAt[ev.Node]; seen {
				rejoins++
				if ev.At != at+15 {
					t.Fatalf("node %d rejoined at %d, left at %d, want fixed downtime 15", ev.Node, ev.At, at)
				}
			}
			open[ev.Node] = true
		} else {
			if !open[ev.Node] {
				t.Fatalf("node %d left without joining", ev.Node)
			}
			delete(open, ev.Node)
			leftAt[ev.Node] = ev.At
		}
	}
	if rejoins == 0 {
		t.Fatal("RejoinProb=0.6 produced no same-identity rejoins")
	}
}

// TestRejoinDeterministic: the rejoin coin and downtime draws ride the
// generator's single stream, so replays are exact.
func TestRejoinDeterministic(t *testing.T) {
	cfg := Config{
		InitialPopulation: 8,
		ArrivalRate:       0.4,
		Session:           ExpSessions(25),
		RejoinProb:        0.5,
		Downtime:          ExpSessions(10),
	}
	a := drain(New(17, cfg), 800)
	b := drain(New(17, cfg), 800)
	if len(a) != len(b) {
		t.Fatalf("replays differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replays diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestRejoinConfigPanics: a rejoin probability outside [0,1] and a
// probability without a downtime distribution are both coding errors.
func TestRejoinConfigPanics(t *testing.T) {
	base := Config{InitialPopulation: 1, ArrivalRate: 1, Session: ExpSessions(10)}
	for name, f := range map[string]func(){
		"negative prob": func() {
			cfg := base
			cfg.RejoinProb, cfg.Downtime = -0.1, FixedSessions(5)
			New(1, cfg)
		},
		"prob above one": func() {
			cfg := base
			cfg.RejoinProb, cfg.Downtime = 1.5, FixedSessions(5)
			New(1, cfg)
		},
		"missing downtime": func() {
			cfg := base
			cfg.RejoinProb = 0.5
			New(1, cfg)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := New(uint64(i), Config{InitialPopulation: 50, ArrivalRate: 1, Session: ExpSessions(30)})
		drain(g, 1000)
	}
}
