// Package broadcast implements reliable broadcast in a dynamic
// distributed system — the dissemination half of the paper's canonical
// problem, studied as a problem of its own by the same research group:
// a source broadcasts a message, and every entity that stays in the
// system from the broadcast onward must deliver it exactly once, despite
// entities joining and leaving while the message spreads.
//
// Two protocols span the trade the paper's analysis predicts:
//
//   - Flood: each member forwards the message once to its neighbors on
//     first receipt. Message-optimal and fast, but a relay that departs
//     mid-dissemination silently cuts off whatever only it would have
//     reached — delivery to stable members is not guaranteed under churn.
//   - AntiEntropy: members that hold the message periodically offer it to
//     every current neighbor that has not yet ACKNOWLEDGED it — including
//     neighbors gained later through churn repairs, and offers lost to
//     message drops, which are simply re-sent next period. Costlier, but
//     on an overlay that stays connected every stable member eventually
//     delivers, under churn and loss alike.
//
// The Check function judges a run from the ground-truth trace: stable
// coverage (the delivery obligation), duplicate deliveries (Integrity)
// and delivery latency.
package broadcast

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/node"
	"repro/internal/sim"
)

// Message tag and trace mark prefixes.
const (
	tagMsg = "bcast.msg"
	tagAck = "bcast.ack"

	markSend    = "bcast.send"
	markDeliver = "bcast.deliver"
)

// Broadcast configures one dissemination. A Broadcast value drives a
// single world and a single message.
type Broadcast struct {
	// AntiEntropy switches from forward-once flooding to periodic
	// offers that also reach neighbors gained after the first pass.
	AntiEntropy bool
	// SpreadInterval is the anti-entropy period. Default 4.
	SpreadInterval sim.Time
	// MaxTicks bounds each member's anti-entropy activity. Default 2000.
	MaxTicks int

	launched bool
}

func (bc *Broadcast) spreadInterval() sim.Time {
	if bc.SpreadInterval > 0 {
		return bc.SpreadInterval
	}
	return 4
}

func (bc *Broadcast) maxTicks() int {
	if bc.MaxTicks > 0 {
		return bc.MaxTicks
	}
	return 2000
}

type bcastBehavior struct {
	proto   *Broadcast
	has     bool
	payload float64
	// acked marks neighbors known to hold the message: they confirmed an
	// offer, or they are the one we got the message from.
	acked map[graph.NodeID]bool
	ticks int
}

// Factory returns the behaviour factory for worlds hosting the broadcast.
func (bc *Broadcast) Factory() node.BehaviorFactory {
	return func(graph.NodeID) node.Behavior {
		return &bcastBehavior{proto: bc, acked: make(map[graph.NodeID]bool)}
	}
}

func (b *bcastBehavior) Init(*node.Proc) {}

func (b *bcastBehavior) Receive(p *node.Proc, m node.Message) {
	switch m.Tag {
	case tagMsg:
		if b.proto.AntiEntropy {
			// Confirm every offer, even duplicates: the sender keeps
			// re-offering until an acknowledgment survives the channel.
			p.Send(m.From, tagAck, nil)
			b.acked[m.From] = true
		}
		if !b.has {
			b.deliver(p, m.Payload.(float64), m.From)
		}
	case tagAck:
		b.acked[m.From] = true
	}
}

// deliver marks the first receipt and starts forwarding. exclude is the
// entity the message arrived from (zero for the source).
func (b *bcastBehavior) deliver(p *node.Proc, payload float64, exclude graph.NodeID) {
	b.has = true
	b.payload = payload
	p.Mark(markDeliver)
	if b.proto.AntiEntropy {
		b.acked[exclude] = true
		b.tick(p)
		return
	}
	for _, u := range p.Neighbors() {
		if u != exclude {
			p.Send(u, tagMsg, payload)
		}
	}
}

func (b *bcastBehavior) tick(p *node.Proc) {
	b.ticks++
	if b.ticks > b.proto.maxTicks() {
		return
	}
	for _, u := range p.Neighbors() {
		if !b.acked[u] {
			p.Send(u, tagMsg, b.payload)
		}
	}
	p.After(b.proto.spreadInterval(), func() { b.tick(p) })
}

// Launch broadcasts payload from the given present source, now.
func (bc *Broadcast) Launch(w *node.World, source graph.NodeID, payload float64) {
	if bc.launched {
		panic("broadcast: launched twice")
	}
	p := w.Proc(source)
	if p == nil {
		panic(fmt.Sprintf("broadcast: source %d not present", source))
	}
	b, ok := node.FindBehavior[*bcastBehavior](p.Behavior())
	if !ok {
		panic("broadcast: world was not built with this broadcast's factory")
	}
	bc.launched = true
	p.Mark(markSend)
	b.deliver(p, payload, p.ID)
}

// Report is the checker's judgment of one dissemination.
type Report struct {
	// SentAt is the broadcast time (-1 if no send mark was found).
	SentAt core.Time
	// StableCount is the number of entities present from the send to the
	// end of the run — the entities obligated to deliver.
	StableCount int
	// DeliveredStable counts obligated entities that delivered.
	DeliveredStable int
	// DeliveredOther counts deliveries by non-obligated entities
	// (late joiners, early leavers) — allowed, not required.
	DeliveredOther int
	// Duplicates counts entities that delivered more than once
	// (Integrity violations).
	Duplicates int
	// Latencies holds delivery delays of obligated entities, sorted.
	Latencies []core.Time
}

// Coverage returns DeliveredStable / StableCount (1 when no obligation).
func (r Report) Coverage() float64 {
	if r.StableCount == 0 {
		return 1
	}
	return float64(r.DeliveredStable) / float64(r.StableCount)
}

// OK reports whether the delivery obligation and Integrity both held.
func (r Report) OK() bool {
	return r.SentAt >= 0 && r.DeliveredStable == r.StableCount && r.Duplicates == 0
}

// LatencyP returns the p-th percentile delivery latency among obligated
// entities (-1 when none delivered).
func (r Report) LatencyP(p float64) core.Time {
	if len(r.Latencies) == 0 {
		return -1
	}
	idx := int(p / 100 * float64(len(r.Latencies)-1))
	return r.Latencies[idx]
}

// Check judges the dissemination against the recorded run.
func Check(tr *core.Trace) Report {
	rep := Report{SentAt: -1}
	deliveredAt := make(map[graph.NodeID]core.Time)
	for _, ev := range tr.Events() {
		if ev.Kind != core.TMark {
			continue
		}
		switch {
		case ev.Tag == markSend:
			if rep.SentAt < 0 {
				rep.SentAt = ev.At
			}
		case strings.HasPrefix(ev.Tag, markDeliver):
			if _, dup := deliveredAt[ev.P]; dup {
				rep.Duplicates++
				continue
			}
			deliveredAt[ev.P] = ev.At
		}
	}
	if rep.SentAt < 0 {
		return rep
	}
	stable := make(map[graph.NodeID]bool)
	for _, id := range tr.StableBetween(rep.SentAt, tr.End()) {
		stable[id] = true
	}
	rep.StableCount = len(stable)
	for id, at := range deliveredAt {
		if stable[id] {
			rep.DeliveredStable++
			rep.Latencies = append(rep.Latencies, at-rep.SentAt)
		} else {
			rep.DeliveredOther++
		}
	}
	sort.Slice(rep.Latencies, func(i, j int) bool { return rep.Latencies[i] < rep.Latencies[j] })
	return rep
}
