package broadcast

import (
	"testing"

	"repro/internal/churn"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/topology"
)

func cycleWorld(bc *Broadcast, n int) (*node.World, *sim.Engine) {
	e := sim.New()
	w := node.NewWorld(e, topology.NewManual(), bc.Factory(), node.Config{
		MinLatency: 1, MaxLatency: 2, Seed: 1,
	})
	for i := 1; i <= n; i++ {
		w.Join(graph.NodeID(i))
	}
	for i := 1; i <= n; i++ {
		w.SetLink(graph.NodeID(i), graph.NodeID(i%n+1), true)
	}
	return w, e
}

func TestFloodDeliversEverywhereStatic(t *testing.T) {
	bc := &Broadcast{}
	w, e := cycleWorld(bc, 20)
	bc.Launch(w, 1, 3.14)
	e.RunUntil(500)
	w.Close()
	rep := Check(w.Trace)
	if !rep.OK() {
		t.Fatalf("static flood broadcast: %+v", rep)
	}
	if rep.StableCount != 20 || rep.DeliveredStable != 20 {
		t.Fatalf("coverage %d/%d", rep.DeliveredStable, rep.StableCount)
	}
	// The farthest member is 10 hops away at <= 2 ticks per hop.
	if p100 := rep.LatencyP(100); p100 > 22 {
		t.Fatalf("max latency %d, want <= 22", p100)
	}
	if rep.LatencyP(0) != 0 {
		t.Fatalf("source latency %d, want 0", rep.LatencyP(0))
	}
}

func TestFloodMessageOptimalOnTree(t *testing.T) {
	bc := &Broadcast{}
	e := sim.New()
	w := node.NewWorld(e, topology.NewGrowingPath(), bc.Factory(), node.Config{Seed: 1})
	for i := 1; i <= 10; i++ {
		w.Join(graph.NodeID(i))
	}
	bc.Launch(w, 1, 1)
	e.RunUntil(200)
	w.Close()
	if !Check(w.Trace).OK() {
		t.Fatal("path broadcast incomplete")
	}
	// One message per edge on a tree.
	if ms := w.Trace.Messages(tagMsg); ms.Sent != 9 {
		t.Fatalf("flood sent %d messages on a 9-edge path", ms.Sent)
	}
}

// A relay that leaves mid-dissemination cuts off the far side: the flood
// misses stable members, the anti-entropy variant recovers them through
// the repaired topology.
func relayDeathFixture(t *testing.T, bc *Broadcast) Report {
	t.Helper()
	e := sim.New()
	w := node.NewWorld(e, topology.NewManual(), bc.Factory(), node.Config{
		MinLatency: 2, MaxLatency: 2, Seed: 1,
	})
	// Path 1-2-3-4: relay 2 dies while the message is still in flight to
	// it (latency 2, leave at 1), so the far side never hears the flood;
	// a repair bridges 1-3 to keep the graph connected.
	for i := 1; i <= 4; i++ {
		w.Join(graph.NodeID(i))
	}
	for i := 1; i < 4; i++ {
		w.SetLink(graph.NodeID(i), graph.NodeID(i+1), true)
	}
	bc.Launch(w, 1, 7)
	e.At(1, func() {
		w.Leave(2)
		w.SetLink(1, 3, true)
	})
	e.RunUntil(1000)
	w.Close()
	return Check(w.Trace)
}

func TestFloodCutOffByRelayDeath(t *testing.T) {
	rep := relayDeathFixture(t, &Broadcast{})
	if rep.OK() {
		t.Fatalf("flood survived a relay death: %+v", rep)
	}
	if rep.DeliveredStable >= rep.StableCount {
		t.Fatalf("expected missing stable deliveries: %+v", rep)
	}
}

func TestAntiEntropySurvivesRelayDeath(t *testing.T) {
	rep := relayDeathFixture(t, &Broadcast{AntiEntropy: true, SpreadInterval: 3})
	if !rep.OK() {
		t.Fatalf("anti-entropy missed stable members: %+v (coverage %.2f)", rep, rep.Coverage())
	}
}

func TestAntiEntropyReachesLateJoiners(t *testing.T) {
	bc := &Broadcast{AntiEntropy: true, SpreadInterval: 3}
	w, e := cycleWorld(bc, 6)
	bc.Launch(w, 1, 9)
	e.RunUntil(50)
	w.Join(99)
	w.SetLink(99, 3, true)
	e.RunUntil(300)
	w.Close()
	rep := Check(w.Trace)
	// The joiner is not stable (joined after the send) but anti-entropy
	// still reaches it: DeliveredOther counts it.
	if rep.DeliveredOther != 1 {
		t.Fatalf("late joiner not reached: %+v", rep)
	}
	if !rep.OK() {
		t.Fatalf("stable coverage broken: %+v", rep)
	}
}

func TestIntegrityDuplicateDetection(t *testing.T) {
	// Synthetic trace with a duplicate delivery: the checker must flag it.
	tr := &core.Trace{}
	tr.Join(0, 1)
	tr.Join(0, 2)
	tr.Mark(5, 1, markSend)
	tr.Mark(5, 1, markDeliver)
	tr.Mark(8, 2, markDeliver)
	tr.Mark(9, 2, markDeliver) // duplicate
	tr.Close(20)
	rep := Check(tr)
	if rep.Duplicates != 1 {
		t.Fatalf("Duplicates = %d, want 1", rep.Duplicates)
	}
	if rep.OK() {
		t.Fatal("duplicate delivery judged OK")
	}
}

func TestCheckNoSend(t *testing.T) {
	tr := &core.Trace{}
	tr.Join(0, 1)
	tr.Close(10)
	rep := Check(tr)
	if rep.SentAt != -1 || rep.OK() {
		t.Fatalf("no-send trace judged sent: %+v", rep)
	}
}

func TestUnderChurnComparison(t *testing.T) {
	run := func(anti bool) Report {
		bc := &Broadcast{AntiEntropy: anti, SpreadInterval: 3}
		e := sim.New()
		w := node.NewWorld(e, topology.NewRing(5), bc.Factory(), node.Config{
			MinLatency: 1, MaxLatency: 2, Seed: 5,
		})
		gen := churn.New(5, churn.Config{
			InitialPopulation: 24, Immortal: true,
			ArrivalRate: 0.15, Session: churn.ExpSessions(40),
		})
		w.ApplyChurn(gen, 1200)
		e.RunUntil(100)
		bc.Launch(w, w.Present()[0], 1)
		e.RunUntil(1200)
		w.Close()
		return Check(w.Trace)
	}
	flood := run(false)
	anti := run(true)
	if anti.Coverage() < flood.Coverage() {
		t.Fatalf("anti-entropy coverage %.2f below flood's %.2f", anti.Coverage(), flood.Coverage())
	}
	if !anti.OK() {
		t.Fatalf("anti-entropy on a repaired ring should cover all stable members: %+v", anti)
	}
}

func TestLaunchValidation(t *testing.T) {
	bc := &Broadcast{}
	w, _ := cycleWorld(bc, 3)
	for name, f := range map[string]func(){
		"absent source": func() { bc.Launch(w, 99, 1) },
		"double launch": func() {
			bc.Launch(w, 1, 1)
			bc.Launch(w, 2, 2)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
