package broadcast_test

import (
	"fmt"

	"repro/internal/broadcast"
	"repro/internal/graph"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Disseminate one message with acknowledged anti-entropy and judge the
// delivery obligation from the ground truth.
func Example() {
	engine := sim.New()
	bc := &broadcast.Broadcast{AntiEntropy: true, SpreadInterval: 3}
	world := node.NewWorld(engine, topology.NewManual(), bc.Factory(), node.Config{
		MinLatency: 1, MaxLatency: 2, Seed: 1, LossRate: 0.2,
	})
	const n = 10
	for i := 1; i <= n; i++ {
		world.Join(graph.NodeID(i))
	}
	for i := 1; i <= n; i++ {
		world.SetLink(graph.NodeID(i), graph.NodeID(i%n+1), true)
	}

	bc.Launch(world, 1, 3.14)
	engine.RunUntil(800)
	world.Close()

	rep := broadcast.Check(world.Trace)
	fmt.Println("obligation met despite 20% loss:", rep.OK())
	fmt.Printf("delivered %d/%d stable members\n", rep.DeliveredStable, rep.StableCount)
	// Output:
	// obligation met despite 20% loss: true
	// delivered 10/10 stable members
}
