// State machine: the full reliable-object pipeline of the paper's
// research programme (claim C6) in one run. Unreliable consensus objects
// (which crash mid-protocol) are turned into reliable consensus by the
// t+1 self-implementation, and reliable consensus turns ANY sequentially
// specified object into a wait-free linearizable one via the universal
// construction — here, a replicated bank account with order-sensitive
// operations, plus an atomic snapshot for an all-at-once audit.
//
//	go run ./examples/statemachine
package main

import (
	"fmt"
	"sync"

	"repro/internal/object/snapshot"
	"repro/internal/object/universal"
)

func main() {
	replicatedAccount()
	fmt.Println()
	auditSnapshot()
}

func replicatedAccount() {
	fmt.Println("a replicated account from crash-prone consensus objects")
	// Sequential specification: deposits add, the sentinel -1 applies
	// monthly interest (order-sensitive: deposit-then-interest differs
	// from interest-then-deposit, so linearizability is observable).
	apply := func(state, arg int64) int64 {
		if arg == -1 {
			return state + state/10
		}
		return state + arg
	}
	obj := universal.New(apply, 1000, 64, 2)

	// Every log cell's consensus tolerates t=2 responsive crashes of its
	// base objects; crash two bases of the first cells mid-protocol.
	for cell := 0; cell < 4; cell++ {
		obj.CellBases(cell)[0].CrashAfter(2, true)
		obj.CellBases(cell)[1].CrashAfter(5, true)
	}

	const tellers = 4
	clients := make([]*universal.Client, tellers)
	var wg sync.WaitGroup
	for i := 0; i < tellers; i++ {
		clients[i] = obj.NewClient()
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			ops := []int64{100, -1, 50}
			for _, op := range ops {
				if _, err := clients[i].Invoke(op); err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
	for i, c := range clients {
		c.Sync()
		fmt.Printf("  teller %d sees balance %d\n", i, c.State())
	}
	final := clients[0].State()
	for _, c := range clients {
		if c.State() != final {
			panic("replicas diverged")
		}
	}
	fmt.Println("  => all replicas agree on one interleaving of order-sensitive ops,")
	fmt.Println("     despite 8 base consensus objects crashing mid-protocol")
}

func auditSnapshot() {
	fmt.Println("an atomic audit over concurrently updated branch totals")
	// Four branches update their cells concurrently; the auditor's Scan
	// returns a consistent cut (values that coexisted at one instant).
	s := snapshot.New(4)
	var wg sync.WaitGroup
	for b := 0; b < 4; b++ {
		b := b
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := int64(1); v <= 1000; v++ {
				s.Update(b, v)
			}
		}()
	}
	audits := 0
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			got := s.Scan()
			fmt.Printf("  final audit: %v (%d atomic audits ran concurrently)\n", got, audits)
			fmt.Println("  => scans are linearizable cuts built from registers alone —")
			fmt.Println("     snapshots need no consensus, unlike the account above")
			return
		default:
			s.Scan()
			audits++
		}
	}
}
