// Registers and consensus from unreliable parts: the self-implementation
// substrate (claim C6). A reliable register keeps answering while base
// registers crash under it — up to the tolerance — and consensus stays
// consistent across concurrent proposers while base objects crash
// mid-protocol.
//
//	go run ./examples/registers
package main

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/object/consensus"
	"repro/internal/object/register"
)

func main() {
	reliableRegister()
	fmt.Println()
	majorityRegister()
	fmt.Println()
	reliableConsensus()
}

func reliableRegister() {
	fmt.Println("responsive-crash model: a reliable register from t+1 = 3 unreliable ones (t = 2)")
	r, bases := register.NewResponsive(2)
	rd := r.NewReader()
	for i := int64(1); i <= 3; i++ {
		must(r.Write(i * 100))
		v, err := rd.Read()
		must(err)
		fmt.Printf("  wrote %d, read %d, crashed bases: %d\n", i*100, v, crashed(bases))
		if i <= 2 {
			bases[i-1].CrashResponsive() // one base dies per round
		}
	}
	fmt.Println("  => all t = 2 tolerated crashes absorbed; reads never went back in time")

	bases[2].CrashResponsive()
	if _, err := r.NewReader().Read(); err != nil {
		fmt.Printf("  with t+1 = 3 crashes the failure is detected: %v\n", err)
	}
}

func majorityRegister() {
	fmt.Println("non-responsive-crash model: majority register over 2t+1 = 5 bases (t = 2)")
	r, bases := register.NewNonResponsive(2)
	must(r.Write(7))
	// Two bases go silent: their operations never return.
	bases[0].CrashNonResponsive()
	bases[1].CrashNonResponsive()
	defer bases[0].Release()
	defer bases[1].Release()
	start := time.Now()
	must(r.Write(8))
	v, err := r.NewReader().Read()
	must(err)
	fmt.Printf("  two silent crashes, write+read still completed in %v, read %d\n",
		time.Since(start).Round(time.Microsecond), v)
	fmt.Println("  => parallel majority access is wait-free; sequential t+1 access would hang forever")
}

func reliableConsensus() {
	fmt.Println("consensus from t+1 = 3 unreliable consensus objects (t = 2), 8 concurrent proposers")
	c, bases := consensus.NewResponsive(2)
	bases[0].CrashAfter(3, true) // crashes mid-protocol
	bases[1].CrashAfter(6, true)
	const procs = 8
	out := make([]int64, procs)
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			d, err := c.Propose(int64(1000 + i))
			must(err)
			out[i] = d
		}()
	}
	wg.Wait()
	fmt.Printf("  decisions: %v\n", out)
	for _, d := range out {
		if d != out[0] {
			panic("agreement violated")
		}
	}
	fmt.Println("  => agreement despite two base objects crashing mid-protocol (same traversal order)")
}

func crashed(bases []*register.Base) int {
	n := 0
	for _, b := range bases {
		if b.Crashed() {
			n++
		}
	}
	return n
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
