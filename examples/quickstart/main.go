// Quickstart: build a small dynamic distributed system, run a One-Time
// Query in it, and let the specification checker judge the answer.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/churn"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/node"
	"repro/internal/otq"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	// 1. A deterministic event engine: everything below replays
	//    identically for the same seeds.
	engine := sim.New()

	// 2. A protocol for the canonical problem. The echo wave needs no
	//    global knowledge (no diameter bound): entities dissipate the
	//    contribution set to their neighbors and the querier answers
	//    after 60 quiet ticks.
	proto := &otq.EchoWave{RescanInterval: 3, QuietFor: 60, MaxRescans: 2000}

	// 3. A world: a ring overlay (always connected, repaired under
	//    churn), per-hop latency of 1-2 ticks, every entity running the
	//    protocol and holding value 10*id.
	world := node.NewWorld(engine, topology.NewRing(42), proto.Factory(), node.Config{
		MinLatency: 1,
		MaxLatency: 2,
		Seed:       42,
		ValueOf:    func(id graph.NodeID) float64 { return 10 * float64(id) },
	})

	// 4. Membership dynamics: 16 founding entities that stay (a stable
	//    core) plus Poisson arrivals that stay ~60 ticks each — finite
	//    concurrency with no a-priori bound (an M^n-style run). QuiesceAt
	//    makes the run eventually stable: churn dies out at t=800, the
	//    regime in which knowledge-free waves regain Termination AND
	//    Validity (drop QuiesceAt and the wave below answers nothing —
	//    exactly the paper's point about perpetual churn).
	gen := churn.New(42, churn.Config{
		InitialPopulation: 16,
		Immortal:          true,
		ArrivalRate:       0.05,
		Session:           churn.ExpSessions(60),
		QuiesceAt:         800,
	})
	world.ApplyChurn(gen, 1500)

	// 5. Let the system churn for a while, then query from the
	//    lowest-numbered member.
	engine.RunUntil(200)
	querier := world.Present()[0]
	run := proto.Launch(world, querier)

	engine.RunUntil(1500)
	world.Close()

	// 6. Judge the answer against the recorded ground truth.
	out := otq.Check(world.Trace, run, func(id graph.NodeID) float64 { return 10 * float64(id) })
	fmt.Println("outcome:", out)
	if ans := run.Answer(); ans != nil {
		fmt.Printf("aggregates: count=%v sum=%v mean=%v\n",
			ans.Result(agg.Count), ans.Result(agg.Sum), ans.Result(agg.Mean))
	}

	// 7. Where does this run sit in the paper's classification?
	class := core.InferClass(world.Trace)
	fmt.Println("inferred class:", class)
	verdict, reason := core.OTQSolvability(class)
	fmt.Printf("the paper's verdict for that class: %s\n  (%s)\n", verdict, reason)
}
