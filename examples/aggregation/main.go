// Aggregation under churn: the exact knowledge-free wave against
// approximate gossip as the churn rate grows — the trade the paper points
// to when exact Validity becomes unattainable (claim C5).
//
//	go run ./examples/aggregation
package main

import (
	"fmt"
	"math"

	"repro/internal/agg"
	"repro/internal/churn"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/graph"
	"repro/internal/otq"
	"repro/internal/stats"
	"repro/internal/topology"
)

func main() {
	valueOf := func(id graph.NodeID) float64 { return 100 + float64(id%7) }
	overlay := func(seed uint64) topology.Overlay { return topology.NewRandomK(seed, 3) }

	tb := stats.NewTable("arrival rate", "echo terminated", "echo valid", "gossip mean", "true mean", "gossip rel err")
	for _, rate := range []float64{0, 0.05, 0.1, 0.2} {
		base := churn.Config{InitialPopulation: 32, Immortal: true}
		if rate > 0 {
			base.ArrivalRate = rate
			base.Session = churn.ExpSessions(60)
		}

		echoRes := exp.Execute(exp.Scenario{
			Seed: 3, Overlay: overlay, Churn: base,
			Protocol: func() otq.Protocol {
				return &otq.EchoWave{RescanInterval: 3, QuietFor: 60, MaxRescans: 3000}
			},
			MinLatency: 1, MaxLatency: 2,
			QueryAt: 100, Horizon: 2000, ValueOf: valueOf,
		})

		gossipRes := exp.Execute(exp.Scenario{
			Seed: 3, Overlay: overlay, Churn: base,
			Protocol: func() otq.Protocol {
				return &otq.GossipPushSum{RoundInterval: 2, Rounds: 150, Seed: 3}
			},
			MinLatency: 1, MaxLatency: 2,
			QueryAt: 100, Horizon: 2000, ValueOf: valueOf,
		})

		gm, truth, relErr := math.NaN(), math.NaN(), math.NaN()
		if ans := gossipRes.Run.Answer(); ans != nil {
			gm = ans.Result(agg.Mean)
			truth = trueMeanAt(gossipRes.Trace, ans.At, valueOf)
			relErr = math.Abs(gm-truth) / truth
		}
		tb.AddRow(rate, echoRes.Outcome.Terminated, echoRes.Outcome.Valid(), gm, truth, relErr)
	}
	fmt.Print(tb)
	fmt.Println("\nexact protocols fail discretely as churn grows; gossip's error degrades gracefully —")
	fmt.Println("the weakening the paper suggests when a class makes exact One-Time Queries unsolvable.")
}

func trueMeanAt(tr *core.Trace, t core.Time, valueOf func(graph.NodeID) float64) float64 {
	present := tr.PresentAt(t)
	if len(present) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, id := range present {
		sum += valueOf(id)
	}
	return sum / float64(len(present))
}
