// Solvability: walk the paper's two-dimensional class lattice, print the
// oracle's verdict for the One-Time Query problem in every class, then
// witness two of the negative results live:
//
//   - a fixed-TTL flood misses stable participants once the diameter
//     exceeds its horizon (unknown diameter bound);
//
//   - under perpetual adversarial growth, a knowledge-free wave never
//     answers (Termination and Validity cannot both be guaranteed).
//
//     go run ./examples/solvability
package main

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/node"
	"repro/internal/otq"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

func main() {
	lattice()
	fmt.Println()
	floodBeyondHorizon()
	fmt.Println()
	starvedWave()
}

// lattice prints the oracle over the class product space.
func lattice() {
	fmt.Println("One-Time Query solvability across the class lattice:")
	tb := stats.NewTable("size \\ geography", "complete", "diam<=D known", "diam bounded", "unconstrained")
	sizes := []core.SizeModel{core.SizeStatic, core.SizeBoundedKnown, core.SizeBoundedUnknown, core.SizeUnbounded}
	geos := []core.GeoModel{core.GeoComplete, core.GeoDiameterKnown, core.GeoDiameterBounded, core.GeoUnconstrained}
	for _, stable := range []bool{false, true} {
		suffix := " (perpetual churn)"
		if stable {
			suffix = " (eventually stable)"
		}
		for _, size := range sizes {
			row := []any{size.String() + suffix}
			for _, geo := range geos {
				v, _ := core.OTQSolvability(core.Class{Size: size, B: 8, Geo: geo, D: 4, EventuallyStable: stable})
				row = append(row, v.String())
			}
			tb.AddRow(row...)
		}
	}
	fmt.Print(tb)
}

// floodBeyondHorizon: a 24-cycle has diameter 12; a TTL-6 flood
// terminates but misses the far half — the C2 witness.
func floodBeyondHorizon() {
	engine := sim.New()
	proto := &otq.FloodTTL{TTL: 6, MaxLatency: 2}
	world := node.NewWorld(engine, topology.NewManual(), proto.Factory(), node.Config{
		MinLatency: 1, MaxLatency: 2, Seed: 1,
	})
	const n = 24
	for i := 1; i <= n; i++ {
		world.Join(graph.NodeID(i))
	}
	for i := 1; i <= n; i++ {
		world.SetLink(graph.NodeID(i), graph.NodeID(i%n+1), true)
	}
	run := proto.Launch(world, 1)
	engine.RunUntil(1000)
	world.Close()
	out := otq.Check(world.Trace, run, nil)
	fmt.Printf("fixed TTL on a too-wide cycle (diameter 12, TTL 6):\n  %s\n", out)
	fmt.Printf("  missed stable participants: %v\n", out.MissedStable)
	fmt.Println("  => terminating with a guessed bound sacrifices Validity (claim C2)")
}

// starvedWave: the C3 impossibility argument, played by the adversary
// package — entities keep arriving at the far end of a growing path
// faster than the quiescence window, and the wave never answers.
func starvedWave() {
	engine := sim.New()
	proto := &otq.EchoWave{RescanInterval: 2, QuietFor: 40, MaxRescans: 100000}
	world := node.NewWorld(engine, topology.NewGrowingPath(), proto.Factory(), node.Config{Seed: 1})
	world.Join(1)
	world.Join(2)
	run := proto.Launch(world, 1)
	adv := &adversary.FrontierGrower{Every: 10}
	stop := adv.Attach(world)
	engine.RunUntil(2000)
	stop()
	world.Close()
	out := otq.Check(world.Trace, run, nil)
	fmt.Printf("knowledge-free wave under perpetual adversarial growth:\n  %s\n", out)
	fmt.Printf("  entities that arrived during the query: %d\n", len(world.Trace.Entities()))
	fmt.Println("  => the frontier outruns every traversal; Termination is lost (claim C3)")
}
