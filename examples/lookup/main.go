// Lookup: engineering the geography dimension and then exploiting it.
// A Chord-style finger ring keeps its diameter logarithmic through churn,
// and greedy routing resolves any key to its owner in O(log n) hops using
// nothing but neighbor knowledge — the constructive counterpoint to the
// paper's "an entity may never be able to know the whole system".
//
//	go run ./examples/lookup
package main

import (
	"fmt"

	"repro/internal/churn"
	"repro/internal/lookup"
	"repro/internal/node"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	engine := sim.New()
	l := &lookup.Lookup{}
	world := node.NewWorld(engine, topology.NewFingerRing(), l.Factory(), node.Config{
		MinLatency: 1, MaxLatency: 2, Seed: 42,
	})

	// 64 founding members plus churn: arrivals keep coming, sessions are
	// finite, the finger structure is maintained through every change.
	gen := churn.New(42, churn.Config{
		InitialPopulation: 64,
		Immortal:          true,
		ArrivalRate:       0.08,
		Session:           churn.ExpSessions(200),
	})
	world.ApplyChurn(gen, 4000)
	engine.RunUntil(200)

	g := world.Overlay.Graph()
	d, _ := g.Diameter()
	fmt.Printf("overlay: %d members, %d edges, diameter %d (plain ring would be %d)\n",
		g.NumNodes(), g.NumEdges(), d, g.NumNodes()/2)

	r := rng.New(7)
	fmt.Println("\nten lookups from random members:")
	totalHops := 0
	for i := 0; i < 10; i++ {
		key := r.Uint64()
		present := world.Present()
		origin := present[r.Intn(len(present))]
		run := l.Launch(world, origin, key)
		engine.RunUntil(engine.Now() + 100)
		res := run.Result()
		if res == nil {
			fmt.Printf("  key %016x: unresolved\n", key)
			continue
		}
		truth := lookup.TrueOwner(world.Trace.PresentAt(res.At), key)
		ok := "true owner"
		if res.Owner != truth {
			ok = fmt.Sprintf("STALE (true owner %d)", truth)
		}
		fmt.Printf("  key %016x -> member %3d in %d hops (%s)\n", key, res.Owner, res.Hops, ok)
		totalHops += res.Hops
	}
	fmt.Printf("\nmean hops %.1f over a churning %d-member system — O(log n) addressing\n",
		float64(totalHops)/10, g.NumNodes())
	fmt.Println("from purely local knowledge: structure is manufactured geography.")
}
