// Services: three of the paper's follow-up problems living together in
// one churning system. Every entity simultaneously runs a replicated
// register (epidemic dissemination + join protocol), an eventual leader
// elector (heartbeat diffusion), and a failure detector — composed with
// node.Compose, sharing one overlay, one churn process, one trace. The
// leader writes the register; everyone else reads it; the run's
// regularity and the final election are judged from the ground truth.
//
//	go run ./examples/services
package main

import (
	"fmt"

	"repro/internal/churn"
	"repro/internal/dynreg"
	"repro/internal/fd"
	"repro/internal/graph"
	"repro/internal/node"
	"repro/internal/omega"
	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	engine := sim.New()
	reg := &dynreg.Register{SpreadInterval: 3, WriteWindow: 60}
	elector := &omega.Elector{Beat: 5, Timeout: 150}
	detector := &fd.Detector{HeartbeatEvery: 5, Timeout: 20}

	factory := func(id graph.NodeID) node.Behavior {
		return node.Compose(
			reg.Factory()(id),
			elector.Behavior(),
			detector.Behavior(),
		)
	}
	world := node.NewWorld(engine, topology.NewRing(42), factory, node.Config{
		MinLatency: 1, MaxLatency: 2, Seed: 42,
	})

	gen := churn.New(42, churn.Config{
		InitialPopulation: 16,
		Immortal:          true, // a stable core anchors all three services
		ArrivalRate:       0.06,
		Session:           churn.ExpSessions(120),
	})
	world.ApplyChurn(gen, 3000)
	engine.RunUntil(100)
	reg.Bootstrap(world, 0)

	// The current leader updates the register every 200 ticks; a rotating
	// member reads it every 31.
	writes := 0
	engine.Every(200, func() {
		leader, _ := omega.Agreement(world)
		if world.Proc(leader) == nil || !reg.Active(world, leader) {
			return
		}
		writes++
		reg.Write(world, leader, float64(writes*100))
	})
	engine.Every(31, func() {
		present := world.Present()
		reg.Read(world, present[int(engine.Now())%len(present)])
	})

	engine.RunUntil(3000)
	leader, frac := omega.Agreement(world)
	finalVal, finalOK := reg.Read(world, leader)
	world.Close()
	fmt.Printf("population: %d present, %d entities ever\n",
		len(world.Present()), len(world.Trace.Entities()))
	fmt.Printf("election: leader %d with agreement %.2f (present: %v)\n",
		leader, frac, world.Proc(leader) != nil)
	fmt.Printf("register: %d writes issued by successive leaders\n", writes)
	rep := dynreg.Check(world.Trace)
	fmt.Printf("regularity: %d reads, %d stale, %d not served (rate %.3f)\n",
		rep.Reads, rep.Stale, rep.NotServed, rep.StaleRate())
	if finalOK {
		fmt.Printf("final value at the leader: %v\n", finalVal)
	}
	fmt.Println("\nthree dynamic-system services, one overlay, one ground truth —")
	fmt.Println("composition is free once locality is the only interface.")
}
