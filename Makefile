# dds — a laboratory for Dynamic Distributed Systems
#
# Standard targets for building, testing and regenerating the paper's
# experiment tables. Everything is std-lib Go; no network access needed.

GO ?= go

.PHONY: all build vet test race bench bench-record bench-check verify-bench experiments quick-experiments fuzz fmt clean verify

all: build vet test

# Tier-1 verification: what CI and the ROADMAP hold every PR to. The
# bench gate runs loose (see verify-bench) so host noise cannot flake
# tier-1; the sharp 20% gate stays in bench-check for deliberate runs.
verify: build vet test race verify-bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The experiment suite sits near the default 10m per-package budget
# under the detector's overhead; the explicit timeout is headroom, not
# an expectation.
race:
	$(GO) test -race -timeout 20m ./internal/object/... ./internal/sketch/ ./internal/pex/... ./internal/node/... ./internal/fault/... ./internal/tq/... ./internal/exp/...

bench:
	$(GO) test -bench=. -benchmem ./...

# Record the substrate + experiment benchmarks as JSON for cross-PR
# comparison (BENCH_PR10.json is the baseline this PR ships). The root
# E1-E30 suite is excluded: it takes minutes and its tables live in
# EXPERIMENTS.md already.
bench-record:
	$(GO) test -run='^$$' -bench=. -benchmem ./internal/... | $(GO) run ./cmd/benchrecord -out BENCH_PR10.json

# Diff fresh benchmark numbers against the checked-in baseline; fails on
# any benchmark whose ns/op regressed more than 20% or whose allocs/op
# grew more than 25% (allocation counts are deterministic — that gate
# catches pooled paths that silently start allocating again). A baseline
# benchmark that did not run at all also fails (benchrecord
# -allow-missing overrides when a deletion is deliberate).
bench-check:
	$(GO) test -run='^$$' -bench=. -benchmem ./internal/... | $(GO) run ./cmd/benchrecord -compare BENCH_PR10.json

# The tier-1 flavor of bench-check: the ns/op tolerance is opened to
# 100% so a loaded CI host cannot flake verify, while the two
# deterministic regressions it exists to catch still fail hard —
# allocation growth, and baseline benchmarks that silently stop running.
verify-bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./internal/... | $(GO) run ./cmd/benchrecord -compare BENCH_PR10.json -tolerance 1.0

# Regenerate every table in EXPERIMENTS.md (several minutes).
experiments:
	$(GO) run ./cmd/otqbench

# CI-sized experiment pass.
quick-experiments:
	$(GO) run ./cmd/otqbench -quick -seeds 2

# Short fixed budgets so the whole target stays CI-sized.
fuzz:
	$(GO) test -fuzz=FuzzDecodeTrace -fuzztime=10s ./internal/core/
	$(GO) test -fuzz='^FuzzParse$$' -fuzztime=10s ./internal/fault/
	$(GO) test -fuzz=FuzzEquivSplit -fuzztime=10s ./internal/fault/
	$(GO) test -fuzz=FuzzReceipt -fuzztime=10s ./internal/fault/
	$(GO) test -fuzz=FuzzPullDigest -fuzztime=10s ./internal/node/
	$(GO) test -fuzz=FuzzRejoinClause -fuzztime=10s ./internal/fault/
	$(GO) test -fuzz=FuzzIdentityRecord -fuzztime=10s ./internal/node/
	$(GO) test -fuzz=FuzzReconfigClause -fuzztime=10s ./internal/fault/
	$(GO) test -fuzz=FuzzStackConfigCodec -fuzztime=10s ./internal/node/
	$(GO) test -fuzz=FuzzViewRecord -fuzztime=10s ./internal/pex/
	$(GO) test -fuzz=FuzzPoisonClause -fuzztime=10s ./internal/fault/
	$(GO) test -fuzz=FuzzTQWire -fuzztime=10s ./internal/tq/

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
